"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``plan``     — run APO for a model/hardware combination and print the
  recommended organisation (Algorithm 1);
* ``figures``  — regenerate the simulator-backed paper figures as text
  tables (the fast subset; accuracy figures live in the benchmarks);
* ``demo``     — run the end-to-end tiny-cluster lifecycle;
* ``metrics``  — run the lifecycle and export the cluster's metrics
  (Prometheus text or JSON);
* ``trace``    — run the lifecycle and export a Chrome ``trace_event``
  JSON of the nested flow/FT-DMP spans;
* ``checkpoint`` — run the lifecycle and write a durable ``.ndcp``
  checkpoint (optionally from a mid-fine-tune run boundary);
* ``resume``   — restore a ``.ndcp`` checkpoint into a fresh cluster and
  finish whatever fine-tuning was pending;
* ``catalog``  — dump the calibrated hardware catalog;
* ``serve-bench`` — run the online serving benchmark (adaptive
  micro-batching vs. the synchronous batch=1 baseline);
* ``perf``     — run the perf-trajectory harness (seeded ingest /
  finetune / relabel / serving / sharding scenarios), write
  ``BENCH_*.json``
  results, and optionally gate them against the committed baselines
  (``--check``) or re-record the baselines (``--bless``);
* ``lint``     — run the ndlint invariant rules (intraprocedural
  ND001..ND005 plus the interprocedural call-graph tier ND006..ND010)
  over the package (or given paths) and exit nonzero on unbaselined
  findings (``--baseline``/``--update-baseline`` manage the ledger).

Every subcommand takes the same three plumbing flags: ``--seed`` (the
deterministic run seed), ``--out`` (write the report to a file instead
of stdout), and ``--format`` (output encoding, where the command has
more than one).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _add_common_flags(parser: argparse.ArgumentParser,
                      formats: tuple = ("text", "json"),
                      default_format: str = "text",
                      out_default: Optional[str] = None,
                      out_help: str = "write the output to a file instead "
                                      "of stdout") -> None:
    """The plumbing flags every subcommand shares."""
    parser.add_argument("--seed", type=int, default=0,
                        help="deterministic run seed (default 0)")
    parser.add_argument("--out", default=out_default, help=out_help)
    parser.add_argument("--format", choices=formats, default=default_format,
                        help=f"output format (default {default_format})")


def _cmd_plan(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .core.apo import plan_organization
    from .core.partition import FinetunePlanConfig
    from .models.catalog import model_graph
    from .sim.specs import INF1_2XLARGE, G4DN_4XLARGE, NetworkSpec

    graph = model_graph(args.model)
    store = INF1_2XLARGE if args.accelerator == "inferentia" else G4DN_4XLARGE
    plan = plan_organization(
        graph,
        max_pipestores=args.max_stores,
        store_server=store,
        network=NetworkSpec(gbps=args.gbps),
        config=FinetunePlanConfig(dataset_images=args.images,
                                  num_runs=args.runs),
    )
    best = plan.most_energy_efficient()
    if args.format == "json":
        _emit(json.dumps({
            "model": graph.name,
            "accelerator": store.accelerator.name,
            "gbps": args.gbps,
            "partition_point": plan.split_label,
            "pipestores_apo": plan.num_pipestores,
            "training_time_s": plan.best.training_time_s,
            "pipestores_energy": best.num_pipestores,
            "ips_per_kj": best.ips_per_kj,
        }, indent=2), args.out)
        return 0
    _emit(format_table(
        ["setting", "value"],
        [
            ["model", graph.name],
            ["PipeStore accelerator", store.accelerator.name],
            ["network", f"{args.gbps} Gbps"],
            ["partition point", plan.split_label],
            ["PipeStores (APO)", plan.num_pipestores],
            ["training time", f"{plan.best.training_time_s / 60:.2f} min"],
            ["PipeStores (max IPS/kJ)", best.num_pipestores],
            ["energy efficiency", f"{best.ips_per_kj:,.0f} IPS/kJ"],
        ],
        title=f"APO plan for {graph.name}",
    ), args.out)
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from .analysis import perf
    from .analysis.tables import format_table

    if args.format == "json":
        _emit(json.dumps({
            "fig09": perf.fig09_partition_sweep(),
            "fig11": perf.fig11_apo_sweep(),
            "fig13_resnet50": perf.fig13_inference_scaling(
                ["ResNet50"])["ResNet50"],
        }, indent=2, default=str), args.out)
        return 0
    apo = perf.fig11_apo_sweep()
    f13 = perf.fig13_inference_scaling(["ResNet50"])["ResNet50"]
    _emit("\n".join([
        format_table(
            ["cut", "feature GB", "sync GB", "train time (s)"],
            [[r["cut"], r["feature_traffic_gb"], r["sync_traffic_gb"],
              r["training_time_s"]] for r in perf.fig09_partition_sweep()],
            title="Fig. 9: partition sweep",
        ),
        "",
        format_table(
            ["stores", "train time (s)", "T_diff (s)", "IPS/kJ"],
            [[r["stores"], r["training_time_s"], r["t_diff_s"],
              r["ips_per_kj"]] for r in apo["rows"]],
            title=f"Fig. 11: APO sweep (pick: {apo['apo_pick']} stores)",
        ),
        "",
        format_table(
            ["system", "KIPS"],
            [[v, f13["srv_ips"][v] / 1e3]
             for v in ("SRV-I", "SRV-P", "SRV-C")]
            + [[f"NDPipe x{n}", f13["ndpipe_ips"][n] / 1e3]
               for n in (1, 4, 8, 16, 20)],
            title=f"Fig. 13 (ResNet50), crossovers {f13['crossovers']}",
        ),
    ]), args.out)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.tables import format_bytes, format_table
    from .core.cluster import NDPipeCluster
    from .core.config import ClusterConfig
    from .data.drift import DriftingPhotoWorld, WorldConfig
    from .models.registry import tiny_model

    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3,
        seed=args.seed,
    ))
    cluster = NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ClusterConfig(num_stores=args.stores, nominal_raw_bytes=8192,
                      seed=args.seed),
    )
    x, y = world.sample(args.photos, 0,
                        rng=np.random.default_rng(args.seed + 1))
    cluster.ingest(x, train_labels=y)
    report = cluster.finetune(epochs=2)
    relabel = cluster.offline_relabel()
    rows = [
        ["photos ingested", len(cluster.database)],
        ["images fine-tuned", report.images_extracted],
        ["labels refreshed", relabel.photos_processed],
        ["model delta",
         f"{cluster.tuner.distributions[-1].reduction_factor:.1f}x "
         "smaller than the full model"],
    ] + [[f"traffic: {kind}", format_bytes(num)]
         for kind, num in sorted(cluster.traffic_summary().items())]
    if args.format == "json":
        _emit(json.dumps({str(k): str(v) for k, v in rows}, indent=2),
              args.out)
        return 0
    _emit(format_table(["metric", "value"], rows,
                       title="NDPipe demo lifecycle"), args.out)
    return 0


def _run_lifecycle(stores: int, photos: int, seed: int = 0):
    """One ingest -> finetune -> relabel pass on a tiny cluster."""
    import numpy as np

    from .core.cluster import NDPipeCluster
    from .core.config import ClusterConfig
    from .data.drift import DriftingPhotoWorld, WorldConfig
    from .models.registry import tiny_model

    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3,
        seed=seed,
    ))
    cluster = NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ClusterConfig(num_stores=stores, nominal_raw_bytes=8192, seed=seed),
    )
    x, y = world.sample(photos, 0, rng=np.random.default_rng(seed + 1))
    cluster.ingest(x, train_labels=y)
    cluster.finetune(epochs=1)
    cluster.offline_relabel()
    return cluster


def _emit(text: str, out: Optional[str]) -> None:
    if out:
        with open(out, "w") as handle:
            handle.write(text)
        print(f"wrote {out}")
    else:
        print(text)


def _cmd_metrics(args: argparse.Namespace) -> int:
    cluster = _run_lifecycle(args.stores, args.photos, seed=args.seed)
    if args.format == "json":
        _emit(cluster.metrics.export_json(indent=2), args.out)
    else:
        _emit(cluster.metrics.export_prometheus(), args.out)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    cluster = _run_lifecycle(args.stores, args.photos, seed=args.seed)
    _emit(cluster.tracer.export_chrome_trace(indent=2), args.out)
    return 0


def _make_demo_cluster(stores: int, replication: int = 1, seed: int = 0):
    from .core.cluster import NDPipeCluster
    from .core.config import ClusterConfig
    from .models.registry import tiny_model

    return NDPipeCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ClusterConfig(num_stores=stores, nominal_raw_bytes=8192,
                      replication=replication, seed=seed),
    )


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    import numpy as np

    from .analysis.tables import format_table
    from .data.drift import DriftingPhotoWorld, WorldConfig
    from .durability import inspect_checkpoint

    world = DriftingPhotoWorld(WorldConfig(
        initial_classes=6, max_classes=8, image_size=16, noise=0.3,
        seed=args.seed,
    ))
    cluster = _make_demo_cluster(args.stores, replication=args.replication,
                                 seed=args.seed)
    x, y = world.sample(args.photos, 0,
                        rng=np.random.default_rng(args.seed + 1))
    cluster.ingest(x, train_labels=y)
    run_blobs = {}
    cluster.finetune(
        epochs=1, num_runs=args.runs,
        checkpoint_sink=lambda run, blob: run_blobs.__setitem__(run, blob),
    )
    if args.at_run is not None:
        if args.at_run not in run_blobs:
            print(f"no checkpoint at run {args.at_run} "
                  f"(runs 0..{args.runs - 1})", file=sys.stderr)
            return 1
        blob = run_blobs[args.at_run]
    else:
        cluster.offline_relabel()
        blob = cluster.checkpoint()
    with open(args.out, "wb") as handle:
        handle.write(blob)
    info = inspect_checkpoint(blob)
    pending = info["pending_finetune"]
    rows = [
        ["file", args.out],
        ["bytes", len(blob)],
        ["tuner version", info["tuner_version"]],
        ["stores", info["num_stores"]],
        ["photos", info["photos"]],
        ["replication", info["replication"]],
        ["pending fine-tune",
         "none" if pending is None else
         f"run {pending['next_run']}/{pending['num_runs']}"],
    ]
    if args.format == "json":
        print(json.dumps({str(k): str(v) for k, v in rows}, indent=2))
        return 0
    print(format_table(["field", "value"], rows, title="NDPipe checkpoint"))
    return 0


def _cmd_resume(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .durability import inspect_checkpoint

    with open(args.ckpt, "rb") as handle:
        blob = handle.read()
    info = inspect_checkpoint(blob)
    cluster = _make_demo_cluster(info["num_stores"],
                                 replication=info["replication"],
                                 seed=args.seed)
    progress = cluster.restore(blob)
    rows = [
        ["restored photos", len(cluster.database)],
        ["tuner version (restored)", info["tuner_version"]],
    ]
    if progress is not None:
        report = cluster.finetune(resume=progress)
        rows += [
            ["resumed at run", progress.next_run],
            ["runs completed", report.num_runs],
            ["final loss", f"{report.final_loss:.4f}"],
        ]
    else:
        rows.append(["pending fine-tune", "none"])
    # post-restore hygiene sweep: re-place anything orphaned on downed
    # stores, evict stale copies, and report how much the journal shed
    journal_before = cluster.journal_size
    reingested = sum(
        len(cluster.reingest_orphans(store.store_id))
        for store in cluster.stores if not store.is_available)
    evicted = sum(
        len(cluster.reconcile(store))
        for store in cluster.stores if store.is_available)
    rows += [
        ["orphans re-ingested", reingested],
        ["reconcile evicted", evicted],
        ["journal pruned", journal_before - cluster.journal_size],
    ]
    rows.append(["tuner version (now)", cluster.tuner.version])
    if args.format == "json":
        _emit(json.dumps({str(k): str(v) for k, v in rows}, indent=2),
              args.out)
        return 0
    _emit(format_table(["field", "value"], rows, title="NDPipe resume"),
          args.out)
    return 0


def _cmd_nemesis(args: argparse.Namespace) -> int:
    import os

    from .analysis.tables import format_table
    from .ha import InvariantViolation, NemesisHarness
    from .lint.sanitizer import SANITIZER

    if os.environ.get("NDPIPE_SANITIZE"):
        # mirror the test suite's conftest: guarded classes wrap their
        # locks, the fabric cross-checks ND008, and the harness drains
        # violations after every step
        SANITIZER.enable(mode="record")
    harness = NemesisHarness(seed=args.seed, steps=args.steps,
                             num_stores=args.stores,
                             photos_per_step=args.photos)
    violation = None
    report = None
    try:
        report = harness.run()
    except InvariantViolation as exc:
        violation = str(exc)
    payload = (report.to_dict() if report is not None else {
        "seed": args.seed,
        "steps": args.steps,
        "num_stores": args.stores,
        "events": harness.events,
    })
    payload["violation"] = violation
    status = 0 if violation is None else 1
    if args.format == "json":
        _emit(json.dumps(payload, indent=2), args.out)
        return status
    rows = [
        ["steps run", len(harness.events)],
        ["faults fired", len(harness.injector.fired)],
        ["failovers", int(payload.get("failovers", 0))],
        ["final epoch", harness.cluster.tuner.epoch],
        ["final model version", harness.cluster.tuner.version],
        ["photos acknowledged", len(harness.acknowledged)],
        ["invariant checks", payload.get("invariant_checks", "-")],
        ["verdict", "OK" if violation is None else f"VIOLATION: {violation}"],
    ]
    _emit(format_table(["field", "value"], rows,
                       title=f"NDPipe nemesis (seed {args.seed})"), args.out)
    return status


def _cmd_validate(args: argparse.Namespace) -> int:
    from .analysis.validate import calibration_report, validate_calibration

    _emit(calibration_report(), args.out)
    return 0 if all(a.ok for a in validate_calibration()) else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    import tempfile
    from pathlib import Path

    from .analysis.tables import format_table
    from .bench import (
        SCALES,
        SCENARIOS,
        GateError,
        bless_harness,
        gate_directories,
        render_findings,
        run_harness,
        write_results,
    )

    if args.bless and args.check:
        print("--bless and --check are mutually exclusive", file=sys.stderr)
        return 2
    scenarios = args.scenario or list(SCENARIOS)
    scale = SCALES[args.scale]
    baseline_dir = Path(args.baseline_dir)
    if args.out_dir:
        out_dir = Path(args.out_dir)
    elif args.bless:
        # blessing re-records the committed trajectory in place
        out_dir = baseline_dir
    else:
        # a plain run (and --check) must not clobber the baselines it
        # would be compared against
        out_dir = Path(tempfile.mkdtemp(prefix="ndpipe-perf-"))
    if args.bless:
        # median of several runs centres the baseline in its noise band
        payloads = bless_harness(scale, seed=args.seed, scenarios=scenarios)
    else:
        payloads = run_harness(scale, seed=args.seed, scenarios=scenarios)
    write_results(payloads, out_dir)

    if args.format == "json":
        _emit(json.dumps({
            "scale": scale.name,
            "out_dir": str(out_dir),
            "benches": payloads,
        }, indent=2), args.out)
    else:
        rows = [
            [bench, e["metric"],
             ",".join(f"{k}={v}" for k, v in e.get("labels", {}).items())
             or "-",
             f"{e['value']:g}", e["unit"], e.get("direction") or "info"]
            for bench, payload in sorted(payloads.items())
            for e in payload["results"]
        ]
        _emit(format_table(
            ["bench", "metric", "labels", "value", "unit", "direction"],
            rows,
            title=f"repro perf @ scale={scale.name} -> {out_dir}",
        ), args.out)

    if not args.check:
        return 0
    # a regression must reproduce in every attempt to fail the gate:
    # bursty interference (scheduler preemption, host steal) can push
    # one run's timing past tolerance without any code change
    for attempt in range(max(1, args.attempts)):
        if attempt:
            payloads = run_harness(scale, seed=args.seed,
                                   scenarios=scenarios)
            write_results(payloads, out_dir)
        try:
            findings = gate_directories(baseline_dir, out_dir,
                                        sorted(payloads),
                                        tolerance=args.tolerance)
        except GateError as exc:
            print(f"perf gate error: {exc}", file=sys.stderr)
            return 2
        if all(f.ok for f in findings) or attempt == args.attempts - 1:
            break
        print(f"perf gate attempt {attempt + 1}/{args.attempts} failed, "
              "retrying:")
        print(render_findings(findings))
    print(render_findings(findings))
    return 1 if any(not f.ok for f in findings) else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .lint import LintEngine, package_root, render_json, render_text
    from .lint.baseline import (
        diff_baseline,
        load_baseline,
        render_baseline,
    )

    engine = LintEngine()
    paths = ([Path(p) for p in args.paths] if args.paths
             else [package_root()])
    if args.update_manifest:
        # collect registrations with the manifest check disabled, rewrite
        # both manifests, then lint for real against the fresh copies
        probe = LintEngine()
        probe.config.manifest_path = None
        probe.run(paths)
        engine.registrations = probe.registrations
        target = engine.write_manifest()
        print(f"wrote {target}", file=sys.stderr)
        if probe.fastpath_usage:
            engine.fastpath_usage = probe.fastpath_usage
            target = engine.write_fastpath_manifest()
            print(f"wrote {target}", file=sys.stderr)
    findings = engine.run(paths)
    if args.check_manifests:
        drift = _manifest_drift(engine)
        for line in drift:
            print(f"manifest drift: {line}", file=sys.stderr)
        if drift:
            return 1
    if args.update_baseline:
        target = Path(args.baseline or "lint-baseline.json")
        target.write_text(render_baseline(findings))
        print(f"wrote {target} ({len(findings)} baselined findings)",
              file=sys.stderr)
        return 0
    if args.baseline:
        ledger = load_baseline(Path(args.baseline))
        findings, resolved, matched = diff_baseline(findings, ledger)
        if matched:
            print(f"baseline: {matched} known finding(s) tolerated",
                  file=sys.stderr)
        for key in resolved:
            print(f"baseline: resolved (re-record to shrink the ledger): "
                  f"{key}", file=sys.stderr)
    report = (render_json(findings) if args.format == "json"
              else render_text(findings))
    # write the report before deciding the exit code so the CI gate
    # always has its artifact, pass or fail
    _emit(report, args.out)
    return 1 if findings else 0


def _manifest_drift(engine) -> list:
    """Human-readable drift lines for METRICS.md + the fastpath manifest."""
    drift = []
    path = engine.config.manifest_path
    if path is not None:
        on_disk = path.read_text() if path.is_file() else ""
        if on_disk != engine.render_manifest():
            drift.append(f"{path} is stale; regenerate with "
                         "'repro lint --update-manifest'")
    path = engine.config.fastpath_manifest_path
    if path is not None and engine.fastpath_usage:
        on_disk = path.read_text() if path.is_file() else ""
        if on_disk != engine.render_fastpath_manifest():
            drift.append(f"{path} is stale; regenerate with "
                         "'repro lint --update-manifest'")
    return drift


def _cmd_catalog(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .models.catalog import ALL_MODELS, model_graph
    from .sim.specs import NEURONCORE_V1, SERVERS, TESLA_T4, TESLA_V100

    rows = []
    for name in ALL_MODELS:
        graph = model_graph(name)
        rows.append([
            name, graph.total_flops / 1e9, graph.total_params / 1e6,
            TESLA_T4.inference_ips(graph, 128),
            TESLA_V100.inference_ips(graph, 128),
            NEURONCORE_V1.inference_ips(graph, 128),
        ])
    if args.format == "json":
        _emit(json.dumps({
            "models": [dict(zip(
                ("model", "gflops", "params_m", "t4_ips_128",
                 "v100_ips_128", "neuroncore_ips_128"), row)) for row in rows],
            "servers": [{
                "instance": s.name,
                "accelerator": s.accelerator.name if s.accelerator else None,
                "price_per_hour": s.price_per_hour,
            } for s in SERVERS.values()],
        }, indent=2), args.out)
        return 0
    _emit("\n".join([
        format_table(
            ["model", "GFLOPs", "params (M)", "T4 IPS@128", "V100 IPS@128",
             "NeuronCore IPS@128"],
            rows, title="model catalog (calibrated)",
        ),
        "",
        format_table(
            ["instance", "accelerator", "$/h"],
            [[s.name, s.accelerator.name if s.accelerator else "-",
              s.price_per_hour] for s in SERVERS.values()],
            title="server catalog",
        ),
    ]), args.out)
    return 0


def _cmd_shard_bench(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .placement.bench import run_sharding_bench

    overrides = {}
    if args.uploads is not None:
        overrides["num_uploads"] = args.uploads
    if args.users is not None:
        overrides["num_users"] = args.users
    if args.shards is not None:
        overrides["num_shards"] = args.shards
    result = run_sharding_bench(seed=args.seed, overrides=overrides or None)
    if args.format == "json":
        _emit(json.dumps(result, indent=2), args.out)
        return 0
    placement = result["placement"]
    fanout = result["fanout"]
    migration = result["migration"]
    tables = [
        format_table(
            ["tenant", "offered", "admitted", "rejected", "resident MiB"],
            [[t, a["offered"], a["admitted"], a["rejected"],
              f"{a['resident_bytes'] / 2**20:.1f}"]
             for t, a in sorted(placement["admission"].items())],
            title=(f"placement: {placement['keys']} uploads from "
                   f"{placement['distinct_users']} of "
                   f"{placement['num_users']} users @ "
                   f"{placement['keys_per_s']:.0f} keys/s, "
                   f"spread {placement['spread_max_over_mean']:.3f}x"),
        ),
        format_table(
            ["event", "keys moved", "fraction", "bound"],
            [["join", placement["join"]["moved"],
              f"{placement['join']['fraction']:.4f}",
              f"{placement['join']['bound']:.4f}"],
             ["leave", placement["leave"]["moved"],
              f"{placement['leave']['fraction']:.4f}",
              f"{placement['leave']['bound']:.4f}"]],
            title="ring movement (join lands only on the newcomer: "
                  f"{placement['join']['all_to_new_shard']})",
        ),
        format_table(
            ["strategy", "tuner egress (B)", "relayed", "store versions"],
            [[name, fanout[name]["tuner_egress_bytes"],
              fanout[name]["relayed"],
              str(fanout[name]["store_versions"])]
             for name in ("unicast", "fanout")],
            title=(f"Check-N-Run distribution: fan-out saves "
                   f"{fanout['egress_saving_bytes']} B "
                   f"({fanout['egress_saving_fraction']:.0%}) at equal "
                   f"freshness ({fanout['freshness_equal']})"),
        ),
        format_table(
            ["metric", "value"],
            [["objects moved", migration["ledger"]["objects_moved"]],
             ["objects received", migration["ledger"]["objects_received"]],
             ["objects inflight", migration["ledger"]["objects_inflight"]],
             ["moved fraction",
              f"{migration['join']['moved_fraction']:.4f} "
              f"(bound {migration['bound']:.4f})"],
             ["rebalance bytes", migration["rebalance_bytes"]],
             ["unrecoverable", migration["unrecoverable"]]],
            title=(f"live join -> {migration['join']['num_shards']} shards "
                   f"(within bound: {migration['within_bound']})"),
        ),
    ]
    _emit("\n\n".join(tables), args.out)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .serving.bench import run_serving_comparison
    from .serving.config import ServingConfig

    config = ServingConfig(replicas=args.replicas, slo_s=args.slo,
                           seed=args.seed)
    result = run_serving_comparison(
        seed=args.seed, num_requests=args.requests, rate_rps=args.rate,
        config=config,
    )
    if args.format == "json":
        _emit(json.dumps(result, indent=2), args.out)
        return 0
    rows = []
    for name in ("adaptive", "baseline"):
        r = result[name]
        rows.append([
            name, r["offered"], r["completed"], sum(r["shed"].values()),
            f"{r['throughput_rps']:.0f}",
            f"{r['p50_latency_s'] * 1e3:.1f}",
            f"{r['p99_latency_s'] * 1e3:.1f}",
            f"{r['mean_batch']:.1f}",
        ])
    _emit(format_table(
        ["frontend", "offered", "completed", "shed", "rps",
         "p50 (ms)", "p99 (ms)", "mean batch"],
        rows,
        title=(f"serve-bench @ {args.rate:.0f} rps, "
               f"budget {result['latency_budget_s'] * 1e3:.0f} ms "
               f"-> {result['speedup']:.2f}x throughput"),
    ), args.out)
    return 0


def _cmd_serve_stream(args: argparse.Namespace) -> int:
    from .analysis.tables import format_table
    from .serving.bench import run_streaming_bench
    from .serving.config import ServingConfig, StreamConfig

    config = ServingConfig(replicas=args.replicas, slo_s=args.slo,
                           deadline_s=args.deadline, seed=args.seed)
    stream = StreamConfig(credits=args.credits,
                          min_replicas=args.replicas,
                          max_replicas=args.max_replicas,
                          autoscale=not args.no_autoscale)
    result = run_streaming_bench(
        seed=args.seed, trace=args.trace, num_requests=args.requests,
        config=config, stream=stream,
    )
    if args.format == "json":
        _emit(json.dumps(result, indent=2), args.out)
        return 0
    s, sync = result["streaming"], result["sync"]
    rows = [
        ["streaming", s["offered"], s["completed"],
         s["cancelled"] + s["expired"], s["queue_full"],
         f"{s['throughput_rps']:.0f}",
         f"{s['p50_latency_s'] * 1e3:.1f}",
         f"{s['p99_latency_s'] * 1e3:.1f}",
         f"{s['mean_batch']:.1f}"],
        ["sync", sync["offered"], sync["completed"],
         sync["shed"]["deadline"], sync["shed"]["queue_full"],
         f"{sync['throughput_rps']:.0f}",
         f"{sync['p50_latency_s'] * 1e3:.1f}",
         f"{sync['p99_latency_s'] * 1e3:.1f}",
         f"{sync['mean_batch']:.1f}"],
    ]
    _emit("\n".join([
        format_table(
            ["frontend", "offered", "completed", "late/expired",
             "queue_full", "rps", "p50 (ms)", "p99 (ms)", "mean batch"],
            rows,
            title=(f"serve-stream [{result['trace']}] "
                   f"budget {result['latency_budget_s'] * 1e3:.0f} ms"),
        ),
        "",
        f"out-of-order completions: {s['out_of_order']}  "
        f"redispatches: {s['redispatches']}",
        f"replicas: {result['config']['replicas']} -> "
        f"{s['final_replicas']} (peak {s['peak_replicas']}, "
        f"+{s['scale_ups']}/-{s['scale_downs']})  "
        f"p99 credit wait: {s['p99_credit_wait_s'] * 1e3:.1f} ms",
    ]), args.out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NDPipe reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="run APO (Algorithm 1)")
    plan.add_argument("--model", default="ResNet50")
    plan.add_argument("--accelerator", choices=("t4", "inferentia"),
                      default="t4")
    plan.add_argument("--gbps", type=float, default=10.0)
    plan.add_argument("--max-stores", type=int, default=20)
    plan.add_argument("--images", type=int, default=1_200_000)
    plan.add_argument("--runs", type=int, default=3)
    _add_common_flags(plan)
    plan.set_defaults(func=_cmd_plan)

    figures = sub.add_parser("figures",
                             help="regenerate simulator-backed figures")
    _add_common_flags(figures)
    figures.set_defaults(func=_cmd_figures)

    demo = sub.add_parser("demo", help="run the tiny-cluster lifecycle")
    demo.add_argument("--stores", type=int, default=3)
    demo.add_argument("--photos", type=int, default=90)
    _add_common_flags(demo)
    demo.set_defaults(func=_cmd_demo)

    metrics = sub.add_parser(
        "metrics",
        help="run the lifecycle and export cluster metrics")
    metrics.add_argument("--stores", type=int, default=3)
    metrics.add_argument("--photos", type=int, default=48)
    _add_common_flags(metrics, formats=("prometheus", "json"),
                      default_format="prometheus")
    metrics.set_defaults(func=_cmd_metrics)

    trace = sub.add_parser(
        "trace",
        help="run the lifecycle and export a chrome://tracing JSON")
    trace.add_argument("--stores", type=int, default=3)
    trace.add_argument("--photos", type=int, default=48)
    _add_common_flags(trace, formats=("json",), default_format="json")
    trace.set_defaults(func=_cmd_trace)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="run the lifecycle and write a durable checkpoint blob")
    checkpoint.add_argument("--stores", type=int, default=3)
    checkpoint.add_argument("--photos", type=int, default=48)
    checkpoint.add_argument("--runs", type=int, default=3)
    checkpoint.add_argument("--replication", type=int, default=1)
    checkpoint.add_argument(
        "--at-run", type=int, default=None,
        help="write the mid-fine-tune checkpoint taken after this run "
             "(default: the final post-lifecycle state)")
    _add_common_flags(checkpoint, out_default="ndpipe.ndcp",
                      out_help="checkpoint file to write")
    checkpoint.set_defaults(func=_cmd_checkpoint)

    resume = sub.add_parser(
        "resume",
        help="restore a checkpoint and finish any pending fine-tune")
    resume.add_argument("ckpt", help="checkpoint file written by 'checkpoint'")
    _add_common_flags(resume)
    resume.set_defaults(func=_cmd_resume)

    nemesis = sub.add_parser(
        "nemesis",
        help="run a seeded chaos schedule and check HA invariants")
    nemesis.add_argument("--steps", type=int, default=8,
                         help="lifecycle actions to interleave (default 8)")
    nemesis.add_argument("--stores", type=int, default=3)
    nemesis.add_argument("--photos", type=int, default=4,
                         help="photos per ingest/serve step (default 4)")
    _add_common_flags(
        nemesis, out_help="write the event log / summary to a file "
                          "(use --format json for the CI artifact)")
    nemesis.set_defaults(func=_cmd_nemesis)

    catalog = sub.add_parser("catalog", help="dump the hardware catalog")
    _add_common_flags(catalog)
    catalog.set_defaults(func=_cmd_catalog)

    validate = sub.add_parser(
        "validate", help="check the catalog against the paper's anchors")
    _add_common_flags(validate, formats=("text",))
    validate.set_defaults(func=_cmd_validate)

    serve = sub.add_parser(
        "serve-bench",
        help="benchmark adaptive micro-batching vs the batch=1 baseline")
    serve.add_argument("--requests", type=int, default=800,
                       help="requests in the Poisson trace (default 800)")
    serve.add_argument("--rate", type=float, default=1500.0,
                       help="offered load in requests/s (default 1500)")
    serve.add_argument("--replicas", type=int, default=1)
    serve.add_argument("--slo", type=float, default=0.1,
                       help="latency SLO in seconds (default 0.1)")
    _add_common_flags(serve)
    serve.set_defaults(func=_cmd_serve_bench)

    serve_stream = sub.add_parser(
        "serve-stream",
        help="benchmark the streaming credit-window protocol vs the "
             "synchronous front end on a bursty trace")
    serve_stream.add_argument("--trace",
                              choices=("flash", "diurnal", "poisson"),
                              default="flash",
                              help="arrival-trace shape (default flash)")
    serve_stream.add_argument("--requests", type=int, default=800,
                              help="requests in the trace (default 800)")
    serve_stream.add_argument("--replicas", type=int, default=1,
                              help="starting (and minimum) replica count")
    serve_stream.add_argument("--max-replicas", type=int, default=6,
                              help="autoscaler ceiling (default 6)")
    serve_stream.add_argument("--credits", type=int, default=256,
                              help="client send-credit window (default 256)")
    serve_stream.add_argument("--slo", type=float, default=0.1,
                              help="latency SLO in seconds (default 0.1)")
    serve_stream.add_argument("--deadline", type=float, default=1.0,
                              help="per-request deadline in seconds "
                                   "(default 1.0)")
    serve_stream.add_argument("--no-autoscale", action="store_true",
                              help="pin the replica set (no elasticity)")
    _add_common_flags(serve_stream)
    serve_stream.set_defaults(func=_cmd_serve_stream)

    shard = sub.add_parser(
        "shard-bench",
        help="benchmark the sharded fleet: ring placement at population "
             "scale, fan-out vs unicast distribution, live rebalance")
    shard.add_argument("--uploads", type=int, default=None,
                       help="trace length (default 200000)")
    shard.add_argument("--users", type=int, default=None,
                       help="simulated user population (default 1000000)")
    shard.add_argument("--shards", type=int, default=None,
                       help="fleet size (default 8)")
    _add_common_flags(shard)
    shard.set_defaults(func=_cmd_shard_bench)

    perf = sub.add_parser(
        "perf",
        help="run the perf-trajectory harness; --check gates against the "
             "committed baselines, --bless re-records them")
    perf.add_argument("--scenario", action="append",
                      choices=("ingest", "finetune", "relabel", "serving",
                               "serving_stream", "sharding"),
                      help="scenario to run (repeatable; default: all six)")
    perf.add_argument("--scale", choices=("smoke", "fast", "paper"),
                      default="smoke",
                      help="harness size (default smoke — the scale the "
                           "committed baselines are recorded at)")
    perf.add_argument("--check", action="store_true",
                      help="gate the fresh results against the baselines; "
                           "exit 1 on regression, 2 on invalid comparison")
    perf.add_argument("--attempts", type=int, default=3,
                      help="with --check, a regression must reproduce in "
                           "this many fresh runs to fail the gate "
                           "(default 3; bursty machine noise is not a "
                           "regression)")
    perf.add_argument("--bless", action="store_true",
                      help="write the fresh results over the committed "
                           "baselines (the intentional-change workflow)")
    perf.add_argument("--tolerance", type=float, default=0.15,
                      help="allowed relative drift for directional metrics "
                           "(default 0.15; 'exact' metrics get none)")
    perf.add_argument("--out-dir", default=None,
                      help="directory for the fresh BENCH_*.json files "
                           "(default: the baseline dir when blessing, a "
                           "temp dir otherwise)")
    perf.add_argument("--baseline-dir", default="benchmarks/results",
                      help="committed baseline directory "
                           "(default benchmarks/results)")
    _add_common_flags(perf)
    perf.set_defaults(func=_cmd_perf)

    lint = sub.add_parser(
        "lint", help="run the ndlint invariant rules; nonzero on findings")
    lint.add_argument("paths", nargs="*",
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--update-manifest", action="store_true",
                      help="regenerate obs/METRICS.md and "
                           "fastpath_equivalence.json before linting")
    lint.add_argument("--baseline", metavar="FILE",
                      help="tolerate findings recorded in this "
                           "lint-baseline.json; only new findings fail")
    lint.add_argument("--update-baseline", action="store_true",
                      help="record every current finding into the "
                           "baseline ledger (--baseline or "
                           "lint-baseline.json) and exit 0")
    lint.add_argument("--check-manifests", action="store_true",
                      help="fail when obs/METRICS.md or "
                           "fastpath_equivalence.json is stale")
    _add_common_flags(lint)
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
