"""``repro.train`` — training engines and comparison systems.

Runnable full-training and fine-tuning on the numpy substrate, plus the
paper's baseline system models: SRV-I/P/C, the §3.4 Typical/Ideal
strawmen, naive NDP, and classical data/model parallelism.
"""

from .baselines import (
    DEFAULT_NUM_STORAGE,
    SRV_C_DECOMPRESS_CORES,
    SRV_VARIANTS,
    SystemPoint,
    ideal_finetune,
    ideal_offline_inference,
    inference_crossovers,
    naive_ndp_finetune_breakdown,
    naive_ndp_inference_breakdown,
    ndpipe_inference,
    srv_finetune,
    srv_inference,
    typical_finetune,
    typical_finetune_breakdown,
    typical_inference_breakdown,
    typical_offline_inference,
)
from .distributed import (
    ParallelTrainingEstimate,
    data_parallel_finetune,
    model_parallel_finetune,
    scaling_curve,
)
from .finetune import finetune_classifier
from .fulltrain import TrainHistory, full_train

__all__ = [
    "SystemPoint", "SRV_VARIANTS", "DEFAULT_NUM_STORAGE",
    "SRV_C_DECOMPRESS_CORES",
    "srv_inference", "ndpipe_inference", "inference_crossovers",
    "srv_finetune", "typical_finetune", "ideal_finetune",
    "typical_offline_inference", "ideal_offline_inference",
    "typical_finetune_breakdown", "typical_inference_breakdown",
    "naive_ndp_finetune_breakdown", "naive_ndp_inference_breakdown",
    "ParallelTrainingEstimate", "data_parallel_finetune",
    "model_parallel_finetune", "scaling_curve",
    "full_train", "TrainHistory", "finetune_classifier",
]
