"""Single-host fine-tuning convenience wrappers.

The centralised (SRV-style) fine-tuning path: freeze the feature extractor,
train the classifier on the host.  Thin sugar over
:class:`repro.core.ftdmp.FTDMPTrainer` with split = classifier boundary and
``num_runs = 1`` — mathematically the same update sequence NDPipe produces,
which is exactly the paper's point: FT-DMP changes *where* work happens,
not *what* is learned.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.ftdmp import FinetuneReport, FTDMPTrainer
from ..models.split import SplitModel


def finetune_classifier(model: SplitModel, x: np.ndarray, y: np.ndarray,
                        epochs: int = 3, lr: float = 3e-3,
                        batch_size: int = 64, num_runs: int = 1,
                        seed: int = 0,
                        eval_fn: Optional[Callable[[], float]] = None,
                        ) -> FinetuneReport:
    """Fine-tune ``model``'s classifier on (x, y); features stay frozen."""
    trainer = FTDMPTrainer(model, lr=lr, batch_size=batch_size, seed=seed)
    return trainer.finetune(x, y, epochs=epochs, num_runs=num_runs,
                            eval_fn=eval_fn)
