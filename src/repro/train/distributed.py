"""Distributed-training baselines: data and model parallelism (§2.1).

Cost models for the two classical strategies NDPipe's FT-DMP is contrasted
with.  Data parallelism pays per-iteration weight synchronisation that
grows with the worker count; model parallelism pays pipeline-fill bubbles
and keeps most machines under-utilised.  Both are exercised by the §4
analysis benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..models.graph import ModelGraph
from ..sim.specs import AcceleratorSpec, NetworkSpec


@dataclass(frozen=True)
class ParallelTrainingEstimate:
    """Predicted behaviour of one distributed-training configuration."""

    strategy: str
    workers: int
    time_s: float
    compute_time_s: float
    sync_time_s: float
    sync_traffic_bytes: float

    @property
    def sync_fraction(self) -> float:
        if self.time_s == 0:
            return 0.0
        return self.sync_time_s / self.time_s

    @property
    def scaling_efficiency(self) -> float:
        """Fraction of the ideal (sync-free) speedup actually achieved."""
        if self.time_s == 0:
            return 1.0
        return self.compute_time_s / self.time_s


def data_parallel_finetune(graph: ModelGraph, workers: int,
                           accelerator: AcceleratorSpec,
                           network: NetworkSpec,
                           images: int, batch_per_worker: int = 128,
                           trainable_only: bool = True,
                           ) -> ParallelTrainingEstimate:
    """DP fine-tuning with ring-allreduce weight sync every iteration.

    With ``trainable_only`` (fine-tuning) only the classifier synchronises;
    full training synchronises every parameter — the reason DP full
    training scales so poorly over 10 GbE.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    compute_rate = workers * accelerator.full_finetune_ips(graph, naive=True)
    compute_time = images / compute_rate
    sync_params = graph.classifier_params if trainable_only else graph.total_params
    sync_bytes_per_round = 2.0 * (workers - 1) / max(workers, 1) * sync_params * 4
    iterations = images / (batch_per_worker * workers)
    # every worker's ring segment crosses the shared front-end link
    traffic = iterations * sync_bytes_per_round * workers
    sync_time = traffic / network.bytes_per_s
    return ParallelTrainingEstimate(
        strategy="data-parallel",
        workers=workers,
        time_s=compute_time + sync_time,
        compute_time_s=compute_time,
        sync_time_s=sync_time,
        sync_traffic_bytes=traffic,
    )


def model_parallel_finetune(graph: ModelGraph, workers: int,
                            accelerator: AcceleratorSpec,
                            network: NetworkSpec,
                            images: int, microbatch: int = 32,
                            ) -> ParallelTrainingEstimate:
    """MP: stages spread across workers, processed as a microbatch pipeline.

    The makespan is the slowest stage's total work plus the pipeline fill
    (classic GPipe accounting); activations cross the network between
    consecutive workers.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    stages = graph.stages
    # round-robin stages onto workers, preserving order
    per_worker_flops = [0.0] * workers
    boundary_bytes = 0.0
    for i, stage in enumerate(stages):
        worker = min(i * workers // len(stages), workers - 1)
        per_worker_flops[worker] += stage.flops_train
        next_worker = min((i + 1) * workers // len(stages), workers - 1)
        if next_worker != worker and i + 1 < len(stages):
            boundary_bytes += stage.out_bytes
    rates = [
        accelerator.flops_ips(graph.name, flops) *
        accelerator.naive_train_efficiency
        for flops in per_worker_flops if flops > 0
    ]
    slowest = min(rates)
    fill_time = sum(microbatch / rate for rate in rates)
    compute_time = images / slowest + fill_time
    traffic = 2.0 * boundary_bytes * images  # forward + backward activations
    sync_time = traffic / network.bytes_per_s
    return ParallelTrainingEstimate(
        strategy="model-parallel",
        workers=workers,
        time_s=compute_time + sync_time,
        compute_time_s=compute_time,
        sync_time_s=sync_time,
        sync_traffic_bytes=traffic,
    )


def scaling_curve(strategy_fn, graph: ModelGraph, worker_counts: Sequence[int],
                  accelerator: AcceleratorSpec, network: NetworkSpec,
                  images: int) -> List[ParallelTrainingEstimate]:
    """Evaluate a strategy across worker counts (the §4.1 scaling study)."""
    return [
        strategy_fn(graph, n, accelerator, network, images)
        for n in worker_counts
    ]
