"""Full training (every layer, from scratch) on the numpy substrate.

Used to create base models for the drift studies and as the 'Full'
comparison row of Table 2 / Fig. 4.  Contrast with
:class:`repro.core.ftdmp.FTDMPTrainer`, which freezes the feature
extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..data.loader import batch_iter
from ..models.split import SplitModel
from ..nn.losses import cross_entropy
from ..nn.optim import Adam, SGD
from ..nn.tensor import Tensor


@dataclass
class TrainHistory:
    """Loss trajectory of one full-training job."""

    losses: List[float] = field(default_factory=list)
    epochs: int = 0
    images_seen: int = 0

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]


def full_train(model: SplitModel, x: np.ndarray, y: np.ndarray,
               epochs: int = 5, lr: float = 3e-3, batch_size: int = 64,
               optimizer: str = "adam", seed: int = 0,
               callback: Optional[Callable[[int, float], None]] = None,
               scheduler_fn: Optional[Callable] = None,
               grad_clip: Optional[float] = None,
               ) -> TrainHistory:
    """Train every layer of ``model`` on (x, y); returns the loss history.

    ``scheduler_fn`` builds a :class:`repro.nn.schedulers.Scheduler` from
    the optimizer (stepped once per epoch); ``grad_clip`` bounds the
    global gradient norm per step.
    """
    if epochs <= 0:
        raise ValueError("epochs must be positive")
    model.unfreeze()
    model.train()
    if optimizer == "adam":
        opt = Adam(model.parameters(), lr=lr)
    elif optimizer == "sgd":
        opt = SGD(model.parameters(), lr=lr, momentum=0.9)
    else:
        raise ValueError(f"unknown optimizer {optimizer!r}")
    scheduler = scheduler_fn(opt) if scheduler_fn is not None else None
    rng = np.random.default_rng(seed)
    history = TrainHistory()
    for epoch in range(epochs):
        losses = []
        for xb, yb in batch_iter(x, y, batch_size, rng):
            logits = model(Tensor(xb))
            loss = cross_entropy(logits, yb)
            model.zero_grad()
            loss.backward()
            if grad_clip is not None:
                from ..nn.schedulers import clip_gradients

                clip_gradients(model.parameters(), grad_clip)
            opt.step()
            losses.append(loss.item())
        epoch_loss = float(np.mean(losses))
        history.losses.append(epoch_loss)
        history.epochs += 1
        history.images_seen += len(x)
        if callback is not None:
            callback(epoch, epoch_loss)
        if scheduler is not None:
            scheduler.step()
    return history
