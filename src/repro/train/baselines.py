"""Comparison systems: SRV-I / SRV-P / SRV-C, Typical/Ideal, naive NDP.

These are the throughput-and-power operating points the paper plots NDPipe
against.  Each function composes pipeline stages from the hardware catalog
and returns a :class:`SystemPoint` (throughput, component power, fleet).

System definitions (§3.4, §6.2):

* **SRV-I** — host keeps preprocessed binaries locally; GPU-bound (ideal).
* **SRV-P** — host loads *uncompressed* preprocessed binaries from storage
  servers over the network.
* **SRV-C** — like SRV-P but deflate-compressed binaries, 8 host cores
  decompressing.
* **Typical / Ideal** — the §3.4 strawmen: same hardware as SRV but with
  *sequential* (unpipelined, unoptimised) stage execution.
* **naive NDP** — §4's strawman: entire fine-tuning on storage servers
  with per-iteration weight synchronisation; offline inference with 1
  preprocessing core per store.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..models.graph import ModelGraph
from ..sim.pipeline import Stage, pipelined_throughput, sequential_throughput
from ..sim.power import PowerDraw, server_power, total_power
from ..sim.specs import (
    COMPRESSED_PREPROCESSED_BYTES,
    G4DN_4XLARGE,
    G4DN_4XLARGE_NOGPU,
    P3_8XLARGE,
    PCIE,
    PREPROCESSED_BYTES,
    RAW_IMAGE_BYTES,
    NetworkSpec,
    ServerSpec,
    TEN_GBE,
)

SRV_VARIANTS = ("SRV-I", "SRV-P", "SRV-C")

#: storage servers behind the host in every SRV configuration (§3.4)
DEFAULT_NUM_STORAGE = 4
#: host cores dedicated to decompression in SRV-C (§6.2)
SRV_C_DECOMPRESS_CORES = 8


@dataclass(frozen=True)
class SystemPoint:
    """One system at one operating point."""

    name: str
    throughput_ips: float
    power: PowerDraw
    bottleneck: str

    @property
    def ips_per_watt(self) -> float:
        return self.throughput_ips / self.power.total_watts

    def time_for(self, images: int) -> float:
        return images / self.throughput_ips

    def energy_kj_for(self, images: int) -> float:
        return self.power.total_watts * self.time_for(images) / 1e3


# ---------------------------------------------------------------------------
# Offline inference
# ---------------------------------------------------------------------------
def srv_inference(variant: str, graph: ModelGraph,
                  network: NetworkSpec = TEN_GBE,
                  host: ServerSpec = P3_8XLARGE,
                  num_storage: int = DEFAULT_NUM_STORAGE,
                  batch_size: int = 128) -> SystemPoint:
    """Offline-inference operating point of an SRV variant (Fig. 13)."""
    if variant not in SRV_VARIANTS:
        raise ValueError(f"unknown SRV variant {variant!r}")
    accel = host.accelerator
    gpu_rate = host.accelerator_count * accel.inference_ips(graph, batch_size)
    stages = [Stage("FE&Cl", gpu_rate)]
    decomp_cores = 0
    if variant != "SRV-I":
        payload = (COMPRESSED_PREPROCESSED_BYTES if variant == "SRV-C"
                   else PREPROCESSED_BYTES)
        disk = G4DN_4XLARGE_NOGPU.disk
        stages.append(Stage("Read", num_storage * disk.read_ips(payload)))
        stages.append(Stage("Data Trans.", network.transfer_ips(payload)))
        if variant == "SRV-C":
            decomp_cores = SRV_C_DECOMPRESS_CORES
            stages.append(Stage("Decomp.", host.cpu.decompress_ips(
                decomp_cores, payload)))
    rate, bottleneck = pipelined_throughput(stages)

    gpu_util = min(1.0, rate / gpu_rate)
    draws = [server_power(host, gpu_util=gpu_util, active_cores=decomp_cores)]
    for _ in range(num_storage):
        # the photos live on these servers either way; disks keep spinning
        draws.append(server_power(G4DN_4XLARGE_NOGPU, active_cores=1,
                                  disk_active=True))
    return SystemPoint(variant, rate, total_power(draws), bottleneck)


def ndpipe_inference(graph: ModelGraph, num_stores: int,
                     store: ServerSpec = G4DN_4XLARGE,
                     batch_size: int = 128,
                     decompress_cores: int = 2) -> SystemPoint:
    """NDPipe offline inference: NPE-pipelined PipeStores, labels-only net."""
    if num_stores < 1:
        raise ValueError("need at least one PipeStore")
    accel = store.accelerator
    if not accel.fits_batch(graph, batch_size):
        raise MemoryError(
            f"{graph.name} at batch {batch_size} exceeds {accel.name} memory"
        )
    per_store_stages = [
        Stage("Read", store.disk.read_ips(COMPRESSED_PREPROCESSED_BYTES)),
        Stage("Decomp.", store.cpu.decompress_ips(
            decompress_cores, COMPRESSED_PREPROCESSED_BYTES)),
        Stage("FE&Cl", accel.inference_ips(graph, batch_size)),
    ]
    per_store_rate, bottleneck = pipelined_throughput(per_store_stages)
    rate = num_stores * per_store_rate

    gpu_util = min(1.0, per_store_rate /
                   accel.inference_ips(graph, batch_size))
    draw = server_power(store, gpu_util=gpu_util,
                        active_cores=decompress_cores,
                        disk_active=True).scaled(num_stores)
    return SystemPoint("NDPipe", rate, draw, bottleneck)


def inference_crossovers(graph: ModelGraph, max_stores: int = 20,
                         network: NetworkSpec = TEN_GBE,
                         store: ServerSpec = G4DN_4XLARGE,
                         ) -> Dict[str, Optional[int]]:
    """P1/P2/P3: fewest PipeStores matching SRV-P / SRV-C / SRV-I (Fig. 13)."""
    crossings: Dict[str, Optional[int]] = {}
    for label, variant in (("P1", "SRV-P"), ("P2", "SRV-C"), ("P3", "SRV-I")):
        target = srv_inference(variant, graph, network).throughput_ips
        crossings[label] = None
        for n in range(1, max_stores + 1):
            if ndpipe_inference(graph, n, store).throughput_ips >= target:
                crossings[label] = n
                break
    return crossings


# ---------------------------------------------------------------------------
# Fine-tuning
# ---------------------------------------------------------------------------
def srv_finetune(graph: ModelGraph, network: NetworkSpec = TEN_GBE,
                 host: ServerSpec = P3_8XLARGE,
                 num_storage: int = DEFAULT_NUM_STORAGE,
                 variant: str = "SRV-C") -> SystemPoint:
    """Centralised fine-tuning on the host (the Fig. 15 baseline)."""
    if variant not in SRV_VARIANTS:
        raise ValueError(f"unknown SRV variant {variant!r}")
    accel = host.accelerator
    gpu_rate = host.accelerator_count * accel.full_finetune_ips(graph)
    stages = [Stage("FE&CT", gpu_rate)]
    decomp_cores = 0
    if variant != "SRV-I":
        payload = (COMPRESSED_PREPROCESSED_BYTES if variant == "SRV-C"
                   else PREPROCESSED_BYTES)
        disk = G4DN_4XLARGE_NOGPU.disk
        stages.append(Stage("Read", num_storage * disk.read_ips(payload)))
        stages.append(Stage("Data Trans.", network.transfer_ips(payload)))
        if variant == "SRV-C":
            decomp_cores = SRV_C_DECOMPRESS_CORES
            stages.append(Stage("Decomp.", host.cpu.decompress_ips(
                decomp_cores, payload)))
    rate, bottleneck = pipelined_throughput(stages)

    gpu_util = min(1.0, rate / gpu_rate)
    draws = [server_power(host, gpu_util=gpu_util, active_cores=decomp_cores)]
    for _ in range(num_storage):
        draws.append(server_power(G4DN_4XLARGE_NOGPU, active_cores=1,
                                  disk_active=True))
    return SystemPoint(f"{variant} (fine-tune)", rate, total_power(draws),
                       bottleneck)


# ---------------------------------------------------------------------------
# §3.4 strawmen: Typical vs Ideal (sequential execution)
# ---------------------------------------------------------------------------
def typical_finetune(graph: ModelGraph, network: NetworkSpec = TEN_GBE,
                     host: ServerSpec = P3_8XLARGE,
                     num_storage: int = DEFAULT_NUM_STORAGE) -> SystemPoint:
    """§3.4 Typical fine-tuning: unpipelined, uncompressed, naive engine."""
    accel = host.accelerator
    gpu_rate = host.accelerator_count * accel.full_finetune_ips(graph, naive=True)
    disk = G4DN_4XLARGE_NOGPU.disk
    stages = [
        Stage("Read", num_storage * disk.read_ips(PREPROCESSED_BYTES)),
        Stage("Data Trans.", network.transfer_ips(PREPROCESSED_BYTES)),
        Stage("FE&CT", gpu_rate),
        # two host GPUs allreduce the trainable layers over PCIe
        Stage("Weight Sync.", _local_sync_rate(graph, batch_size=512)),
    ]
    rate = sequential_throughput(stages)
    draws = [server_power(host, gpu_util=min(1.0, rate / gpu_rate))]
    draws += [server_power(G4DN_4XLARGE_NOGPU, active_cores=1, disk_active=True)
              for _ in range(num_storage)]
    return SystemPoint("Typical", rate, total_power(draws), "sequential")


def ideal_finetune(graph: ModelGraph,
                   host: ServerSpec = P3_8XLARGE) -> SystemPoint:
    """§3.4 Ideal fine-tuning: data already in host memory."""
    accel = host.accelerator
    gpu_rate = host.accelerator_count * accel.full_finetune_ips(graph, naive=True)
    stages = [
        Stage("FE&CT", gpu_rate),
        Stage("Weight Sync.", _local_sync_rate(graph, batch_size=512)),
    ]
    rate = sequential_throughput(stages)
    return SystemPoint("Ideal", rate, server_power(host, gpu_util=1.0),
                       "FE&CT")


def typical_offline_inference(graph: ModelGraph,
                              network: NetworkSpec = TEN_GBE,
                              host: ServerSpec = P3_8XLARGE,
                              num_storage: int = DEFAULT_NUM_STORAGE,
                              preprocess_cores: int = 8) -> SystemPoint:
    """§3.4 Typical offline inference over raw 2.7 MB JPEGs, sequential."""
    accel = host.accelerator
    gpu_rate = host.accelerator_count * accel.inference_ips(graph, 128)
    disk = G4DN_4XLARGE_NOGPU.disk
    stages = [
        Stage("Read", num_storage * disk.read_ips(RAW_IMAGE_BYTES)),
        Stage("Data Trans.", network.transfer_ips(RAW_IMAGE_BYTES)),
        Stage("Preproc.", host.cpu.preprocess_ips(preprocess_cores)),
        Stage("FE&Cl", gpu_rate),
    ]
    rate = sequential_throughput(stages)
    draws = [server_power(host, gpu_util=min(1.0, rate / gpu_rate),
                          active_cores=preprocess_cores)]
    draws += [server_power(G4DN_4XLARGE_NOGPU, active_cores=1, disk_active=True)
              for _ in range(num_storage)]
    return SystemPoint("Typical", rate, total_power(draws), "sequential")


def ideal_offline_inference(graph: ModelGraph,
                            host: ServerSpec = P3_8XLARGE,
                            preprocess_cores: int = 8) -> SystemPoint:
    """§3.4 Ideal offline inference: images served from local memory."""
    accel = host.accelerator
    gpu_rate = host.accelerator_count * accel.inference_ips(graph, 128)
    stages = [
        Stage("Preproc.", host.cpu.preprocess_ips(preprocess_cores)),
        Stage("FE&Cl", gpu_rate),
    ]
    rate = sequential_throughput(stages)
    return SystemPoint(
        "Ideal", rate,
        server_power(host, gpu_util=min(1.0, rate / gpu_rate),
                     active_cores=preprocess_cores),
        "Preproc.",
    )


# ---------------------------------------------------------------------------
# §4 strawman: naive NDP (full offload + weight sync)
# ---------------------------------------------------------------------------
def naive_ndp_finetune_breakdown(graph: ModelGraph,
                                 network: NetworkSpec = TEN_GBE,
                                 num_stores: int = DEFAULT_NUM_STORAGE,
                                 store: ServerSpec = G4DN_4XLARGE,
                                 batch_per_store: int = 128,
                                 ) -> Dict[str, float]:
    """Per-image seconds of each fine-tuning subprocess under naive NDP.

    The entire fine-tuning job runs on the storage servers; the trainable
    layers synchronise parameter-server style through the shared front-end
    link every iteration — the §4.1 bottleneck.
    """
    accel = store.accelerator
    fleet_rate = num_stores * accel.full_finetune_ips(graph, naive=True)
    read_rate = num_stores * store.disk.read_ips(PREPROCESSED_BYTES)
    sync_bytes_per_image = (
        2.0 * graph.classifier_params * 4 * num_stores
        / (batch_per_store * num_stores)
    )
    return {
        "Read": 1.0 / read_rate,
        "Data Trans.": 0.0,
        "FE&CT": 1.0 / fleet_rate,
        "Weight Sync.": sync_bytes_per_image / network.bytes_per_s,
    }


def typical_finetune_breakdown(graph: ModelGraph,
                               network: NetworkSpec = TEN_GBE,
                               host: ServerSpec = P3_8XLARGE,
                               num_storage: int = DEFAULT_NUM_STORAGE,
                               batch_size: int = 512) -> Dict[str, float]:
    """Per-image seconds of each fine-tuning subprocess in Typical (Fig. 6a)."""
    accel = host.accelerator
    gpu_rate = host.accelerator_count * accel.full_finetune_ips(graph, naive=True)
    disk = G4DN_4XLARGE_NOGPU.disk
    return {
        "Read": 1.0 / (num_storage * disk.read_ips(PREPROCESSED_BYTES)),
        "Data Trans.": 1.0 / network.transfer_ips(PREPROCESSED_BYTES),
        "FE&CT": 1.0 / gpu_rate,
        "Weight Sync.": 1.0 / _local_sync_rate(graph, batch_size),
    }


def naive_ndp_inference_breakdown(graph: ModelGraph,
                                  num_stores: int = DEFAULT_NUM_STORAGE,
                                  store: ServerSpec = G4DN_4XLARGE,
                                  preprocess_cores: int = 1,
                                  ) -> Dict[str, float]:
    """Per-image seconds of each offline-inference subprocess, naive NDP."""
    accel = store.accelerator
    return {
        "Read": 1.0 / (num_stores * store.disk.read_ips(RAW_IMAGE_BYTES)),
        "Data Trans.": 0.0,
        "Preproc.": 1.0 / (num_stores *
                           store.cpu.preprocess_ips(preprocess_cores)),
        "FE&Cl": 1.0 / (num_stores * accel.inference_ips(graph, 128)),
    }


def typical_inference_breakdown(graph: ModelGraph,
                                network: NetworkSpec = TEN_GBE,
                                host: ServerSpec = P3_8XLARGE,
                                num_storage: int = DEFAULT_NUM_STORAGE,
                                preprocess_cores: int = 8) -> Dict[str, float]:
    """Per-image seconds of each offline-inference subprocess in Typical."""
    accel = host.accelerator
    disk = G4DN_4XLARGE_NOGPU.disk
    return {
        "Read": 1.0 / (num_storage * disk.read_ips(RAW_IMAGE_BYTES)),
        "Data Trans.": 1.0 / network.transfer_ips(RAW_IMAGE_BYTES),
        "Preproc.": 1.0 / host.cpu.preprocess_ips(preprocess_cores),
        "FE&Cl": 1.0 / (host.accelerator_count * accel.inference_ips(graph, 128)),
    }


def _local_sync_rate(graph: ModelGraph, batch_size: int) -> float:
    """Images/s capacity of the Typical host's 2-GPU PCIe allreduce."""
    sync_bytes = 2.0 * graph.classifier_params * 4
    per_iteration = sync_bytes / PCIE.bytes_per_s
    return batch_size / per_iteration
