"""NDPipe reproduction — near-data processing for photo storage (ASPLOS '24).

One documented namespace for the symbols everything downstream builds
on.  The system in two imports:

.. code-block:: python

    from repro import ClusterConfig, NDPipeCluster
    from repro.models.registry import tiny_model

    cluster = NDPipeCluster(lambda: tiny_model("ResNet50"),
                            ClusterConfig(num_stores=8, replication=2))

Subsystem tour:

* :mod:`repro.nn` — numpy DNN substrate (autograd, layers, optimisers).
* :mod:`repro.models` — the paper's five architectures: tiny runnable
  variants plus full-scale FLOP/byte stage graphs.
* :mod:`repro.data` — synthetic drifting photo datasets.
* :mod:`repro.storage` — object store, photo label database, codecs.
* :mod:`repro.sim` — discrete-event datacenter simulator, hardware catalog,
  power and cost models.
* :mod:`repro.core` — the contribution: FT-DMP, pipelined training, APO,
  NPE, Check-N-Run, PipeStore/Tuner cluster.
* :mod:`repro.serving` — the high-throughput online upload path:
  admission control, adaptive micro-batching, tensor cache, replica
  dispatch.
* :mod:`repro.faults` — deterministic fault injection and retry.
* :mod:`repro.ha` — control-plane robustness: heartbeat failure
  detection, Tuner warm-standby failover with epoch fencing, automatic
  store eviction/rejoin, and the nemesis chaos harness.
* :mod:`repro.obs` — metrics, tracing, and the bench-JSON schema.
* :mod:`repro.train` / :mod:`repro.inference` — training and inference
  engines including the SRV-I/P/C baselines.
* :mod:`repro.analysis` — one driver per paper table/figure.
"""

import warnings as _warnings

__version__ = "1.1.0"

from . import nn  # noqa: F401
from .core.cluster import InferenceServer, NDPipeCluster
from .core.config import ClusterConfig
from .core.fabric import NetworkFabric
from .faults.injector import FaultInjector
from .faults.retry import RetryPolicy, call_with_retry
from .ha import HAConfig, HAController, NemesisHarness
from .obs.metrics import MetricsRegistry
from .obs.tracing import Tracer
from .placement import ShardConfig, ShardedCluster, TenantConfig
from .serving import ServeRequest, ServingConfig, ServingFrontend

__all__ = [
    "ClusterConfig",
    "FaultInjector",
    "HAConfig",
    "HAController",
    "InferenceServer",
    "MetricsRegistry",
    "NDPipeCluster",
    "NemesisHarness",
    "NetworkFabric",
    "RetryPolicy",
    "ServeRequest",
    "ServingConfig",
    "ServingFrontend",
    "ShardConfig",
    "ShardedCluster",
    "TenantConfig",
    "Tracer",
    "call_with_retry",
    "nn",
    "__version__",
]

#: renamed/superseded symbols still importable from the top level;
#: each access warns once and resolves to the current home
_DEPRECATED_ALIASES = {
    # the single-upload path predates the serving layer
    "OnlineInferencePath": ("repro.inference.online", "OnlineInferencePath",
                            "repro.serving.ServingFrontend"),
}


def __getattr__(name):
    """PEP 562 hook: serve deprecated aliases with a warning."""
    try:
        module_name, attr, replacement = _DEPRECATED_ALIASES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    _warnings.warn(
        f"repro.{name} is deprecated; use {replacement} instead",
        DeprecationWarning, stacklevel=2)
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(__all__) | set(_DEPRECATED_ALIASES))
