"""NDPipe reproduction — near-data processing for photo storage (ASPLOS '24).

Top-level convenience exports.  The public API surface is:

* :mod:`repro.nn` — numpy DNN substrate (autograd, layers, optimisers).
* :mod:`repro.models` — the paper's five architectures: tiny runnable
  variants plus full-scale FLOP/byte stage graphs.
* :mod:`repro.data` — synthetic drifting photo datasets.
* :mod:`repro.storage` — object store, photo label database, codecs.
* :mod:`repro.sim` — discrete-event datacenter simulator, hardware catalog,
  power and cost models.
* :mod:`repro.core` — the contribution: FT-DMP, pipelined training, APO,
  NPE, Check-N-Run, PipeStore/Tuner cluster.
* :mod:`repro.train` / :mod:`repro.inference` — training and inference
  engines including the SRV-I/P/C baselines.
* :mod:`repro.analysis` — one driver per paper table/figure.
"""

__version__ = "1.0.0"

from . import nn  # noqa: F401

__all__ = ["nn", "__version__"]
