"""Tenant namespaces and quota ledgers for the sharded fleet.

Every upload belongs to a tenant; the tenant's :class:`QuotaLedger`
decides at admission time whether it fits the byte and request quotas
declared in :class:`~repro.placement.config.TenantConfig`.  The ledger
sits under two checked conservation laws (ND006 proves them statically,
:meth:`QuotaLedger.check` settles them at runtime):

* ``offered == admitted + rejected`` — every offer resolves exactly one
  way;
* ``charged == resident + released`` — every admitted object is either
  still resident or has been released; nothing is charged twice or
  freed twice.

Byte totals ride along as plain (non-conserved) fields: conservation is
counted in objects, bytes are an attribute of each object.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..lint.contracts import conserves
from .config import TenantConfig
from .metrics import PlacementMetrics

__all__ = ["QuotaLedger", "TenantNamespace", "TenantRegistry",
           "UnknownTenantError"]


class UnknownTenantError(KeyError):
    """Raised when an upload names a tenant the registry never admitted."""


@conserves("offered == admitted + rejected")
@conserves("charged == resident + released")
class QuotaLedger:
    """Object-count conservation plus byte/request quota enforcement."""

    def __init__(self, byte_quota: Optional[int] = None,
                 request_quota: Optional[int] = None):
        self.byte_quota = byte_quota
        self.request_quota = request_quota
        # law 1: admission accounting
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        # law 2: residency accounting
        self.charged = 0
        self.resident = 0
        self.released = 0
        #: bytes behind the ``resident`` objects (plain field, not a law)
        self.resident_bytes = 0

    def offer(self, nbytes: int) -> Optional[str]:
        """Admit one upload of ``nbytes`` or return the rejection reason.

        ``None`` means admitted: the object is charged and resident.
        Otherwise ``"request-quota"`` or ``"byte-quota"`` names the
        exhausted limit and the ledger takes no residency.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if self.request_quota is not None \
                and self.admitted >= self.request_quota:
            self.offered += 1
            self.rejected += 1
            self.check()
            return "request-quota"
        if self.byte_quota is not None \
                and self.resident_bytes + nbytes > self.byte_quota:
            self.offered += 1
            self.rejected += 1
            self.check()
            return "byte-quota"
        self.offered += 1
        self.admitted += 1
        self.charged += 1
        self.resident += 1
        self.resident_bytes += nbytes
        self.check()
        return None

    def release(self, nbytes: int) -> None:
        """Return one resident object's charge (deletion, migration off)."""
        if self.resident == 0:
            raise RuntimeError("release without a matching admitted offer")
        if nbytes < 0 or nbytes > self.resident_bytes:
            raise ValueError(
                f"cannot release {nbytes} bytes of "
                f"{self.resident_bytes} resident")
        self.resident -= 1
        self.released += 1
        self.resident_bytes -= nbytes
        self.check()

    def check(self) -> None:
        """Settle both laws; a skew is a ledger bug, not tolerable drift."""
        if self.offered != self.admitted + self.rejected:
            raise RuntimeError(
                f"quota conservation violated: offered={self.offered} != "
                f"admitted={self.admitted} + rejected={self.rejected}")
        if self.charged != self.resident + self.released:
            raise RuntimeError(
                f"residency conservation violated: charged={self.charged} "
                f"!= resident={self.resident} + released={self.released}")

    def to_dict(self) -> Dict:
        return {
            "offered": self.offered, "admitted": self.admitted,
            "rejected": self.rejected, "charged": self.charged,
            "resident": self.resident, "released": self.released,
            "resident_bytes": self.resident_bytes,
        }


class TenantNamespace:
    """One tenant: a config, its ledger, and its key namespace.

    Photo keys are qualified as ``"<tenant>/<key>"``;
    :meth:`TenantNamespace.owns` and :func:`split_key` recover the
    tenant from a qualified key (tenant names cannot contain ``/``).
    """

    def __init__(self, config: TenantConfig):
        self.config = config.validated()
        self.ledger = QuotaLedger(config.byte_quota, config.request_quota)

    @property
    def name(self) -> str:
        return self.config.name

    def qualify(self, key: str) -> str:
        return f"{self.config.name}/{key}"

    def owns(self, qualified_key: str) -> bool:
        return qualified_key.startswith(self.config.name + "/")


def split_key(qualified_key: str) -> Tuple[str, str]:
    """``"tenant/photo-0001"`` -> ``("tenant", "photo-0001")``."""
    tenant, sep, rest = qualified_key.partition("/")
    if not sep or not tenant or not rest:
        raise ValueError(
            f"{qualified_key!r} is not a tenant-qualified key")
    return tenant, rest


class TenantRegistry:
    """Admission front door over every tenant namespace.

    The registry owns the ``tenant_*`` metric incs so the ledgers stay
    pure counter objects (keeps the ND006 proof over
    :class:`QuotaLedger` free of foreign state).
    """

    def __init__(self, tenants: Iterable[TenantConfig] = (),
                 metrics: Optional[PlacementMetrics] = None):
        self._namespaces: Dict[str, TenantNamespace] = {}
        self.metrics = metrics
        for config in tenants:
            self.add(config)
        if not self._namespaces:
            self.add(TenantConfig())

    def add(self, config: TenantConfig) -> TenantNamespace:
        namespace = TenantNamespace(config)
        if namespace.name in self._namespaces:
            raise ValueError(f"tenant {namespace.name!r} already registered")
        self._namespaces[namespace.name] = namespace
        return namespace

    def __contains__(self, name: str) -> bool:
        return name in self._namespaces

    def __iter__(self):
        return iter(self._namespaces.values())

    def __len__(self) -> int:
        return len(self._namespaces)

    @property
    def names(self) -> List[str]:
        return sorted(self._namespaces)

    def get(self, name: str) -> TenantNamespace:
        try:
            return self._namespaces[name]
        except KeyError:
            raise UnknownTenantError(name) from None

    def admit(self, tenant: str, nbytes: int) -> Optional[str]:
        """Offer one upload to ``tenant``'s ledger; metric-accounted.

        Returns ``None`` when admitted, else the rejection reason.
        """
        namespace = self.get(tenant)
        reason = namespace.ledger.offer(nbytes)
        if self.metrics is not None:
            if reason is None:
                self.metrics.tenant_admitted.inc(tenant=tenant)
            else:
                self.metrics.tenant_rejected.inc(
                    tenant=tenant, reason=reason)
            self.metrics.tenant_bytes.set(
                namespace.ledger.resident_bytes, tenant=tenant)
        return reason

    def release(self, tenant: str, nbytes: int) -> None:
        """Release one resident object's charge from ``tenant``."""
        namespace = self.get(tenant)
        namespace.ledger.release(nbytes)
        if self.metrics is not None:
            self.metrics.tenant_bytes.set(
                namespace.ledger.resident_bytes, tenant=tenant)

    def check(self) -> None:
        for namespace in self._namespaces.values():
            namespace.ledger.check()

    def to_dict(self) -> Dict:
        return {name: ns.ledger.to_dict()
                for name, ns in sorted(self._namespaces.items())}
