"""Typed, validated configs for the sharded multi-tenant fleet.

Mirrors the :class:`~repro.core.config.ClusterConfig` conventions (PR 5):
frozen dataclasses, a single ``validated()`` choke point that names the
offending field, and strict ``to_dict``/``from_dict`` round-trips for
manifests and CLI plumbing.

:class:`ShardConfig` sizes the shard layer itself — ring geometry,
replica-set width, fan-out branching, rebalance batching.
:class:`TenantConfig` describes one tenant namespace and its quotas;
a fleet takes a tuple of them.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

__all__ = ["ShardConfig", "TenantConfig"]


@dataclass(frozen=True)
class ShardConfig:
    """Every plain-value knob of a sharded PipeStore fleet."""

    #: PipeStore shards in the initial fleet
    num_shards: int = 8
    #: virtual nodes per shard on the consistent-hash ring; more vnodes
    #: smooth the load split and shrink per-join movement variance
    vnodes: int = 64
    #: salt for the ring's keyed hash — two rings with the same seed and
    #: membership place every key identically, regardless of join order
    ring_seed: int = 0
    #: copies of every photo, including the primary (1 = no replication)
    replication: int = 1
    #: branching factor of the Check-N-Run distribution tree; the Tuner
    #: uplinks ``fanout`` deltas per round instead of one per shard
    fanout: int = 2
    #: bounded-load factor: fresh ingest skips a shard whose queue depth
    #: exceeds ``load_factor`` x the fleet mean (1.0 disables headroom,
    #: very large values degrade to plain consistent hashing)
    load_factor: float = 1.25
    #: objects migrated per rebalance step before re-checking membership
    rebalance_batch: int = 64

    def validated(self) -> "ShardConfig":
        """Return self after checking every field; raises ``ValueError``."""
        if self.num_shards < 1:
            raise ValueError("need at least one shard")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
        if not 1 <= self.replication <= self.num_shards:
            raise ValueError(
                f"replication {self.replication} must be in "
                f"[1, {self.num_shards}]")
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if not math.isfinite(self.load_factor) or self.load_factor < 1.0:
            raise ValueError(
                f"load_factor must be a finite float >= 1.0, got "
                f"{self.load_factor}")
        if self.rebalance_batch < 1:
            raise ValueError(
                f"rebalance_batch must be >= 1, got {self.rebalance_batch}")
        return self

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardConfig":
        """Build and validate a config from a plain dict (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ShardConfig fields {unknown}; known fields: "
                f"{sorted(known)}")
        return cls(**data).validated()

    @classmethod
    def field_names(cls) -> frozenset:
        return frozenset(f.name for f in fields(cls))


@dataclass(frozen=True)
class TenantConfig:
    """One tenant namespace: an isolation domain with byte/request quotas.

    Quotas are admission-time limits enforced by the fleet's
    :class:`~repro.placement.tenants.TenantNamespace` ledger; ``None``
    means unmetered.  ``weight`` scales the tenant's share of synthetic
    multi-tenant traces (:func:`repro.workloads.continuous
    .multi_tenant_trace`), not its quota.
    """

    #: namespace name; prefixes every photo key the tenant owns
    name: str = "default"
    #: resident-byte ceiling across the tenant's photos (None = unmetered)
    byte_quota: Optional[int] = None
    #: lifetime upload-request ceiling (None = unmetered)
    request_quota: Optional[int] = None
    #: relative share of synthetic trace traffic
    weight: float = 1.0

    def validated(self) -> "TenantConfig":
        """Return self after checking every field; raises ``ValueError``."""
        if not self.name or "/" in self.name or self.name.strip() != self.name:
            raise ValueError(
                f"tenant name must be a non-empty token without '/', got "
                f"{self.name!r}")
        if self.byte_quota is not None and self.byte_quota < 1:
            raise ValueError(
                f"byte_quota must be >= 1 or None, got {self.byte_quota}")
        if self.request_quota is not None and self.request_quota < 1:
            raise ValueError(
                f"request_quota must be >= 1 or None, got "
                f"{self.request_quota}")
        if not math.isfinite(self.weight) or self.weight <= 0:
            raise ValueError(
                f"weight must be a positive finite float, got {self.weight}")
        return self

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "TenantConfig":
        """Build and validate a config from a plain dict (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown TenantConfig fields {unknown}; known fields: "
                f"{sorted(known)}")
        return cls(**data).validated()

    @classmethod
    def field_names(cls) -> frozenset:
        return frozenset(f.name for f in fields(cls))
