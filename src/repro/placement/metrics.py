"""One registration site for every placement metric family (ND004).

The sharded fleet reports through three families — ``shard_*`` for ring
placement and rebalancing, ``tenant_*`` for the quota ledgers, and
``fanout_*`` for tree-shaped Check-N-Run distribution.  ND004 requires
each family to have exactly one registration call site repo-wide; this
bundle is that site, mirroring :class:`~repro.serving.metrics.
ServingMetrics`.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry

__all__ = ["PlacementMetrics"]


class PlacementMetrics:
    """Instrument handles for the placement layer, one registry namespace.

    Registration is get-or-create, so the fleet, the quota ledgers, and
    the rebalancer can all construct this against the same registry and
    share the underlying families.
    """

    def __init__(self, metrics: MetricsRegistry):
        self.registry = metrics
        # -- ring placement ---------------------------------------------
        self.placements = metrics.counter(
            "shard_placements_total",
            "photos placed through the consistent-hash ring, by shard",
            label_names=("shard",))
        self.load_skips = metrics.counter(
            "shard_load_skips_total",
            "ring picks that skipped an over-bound shard for a successor")
        self.shard_count = metrics.gauge(
            "shard_count", "shards currently on the ring")
        # -- rebalancing ------------------------------------------------
        self.moved = metrics.counter(
            "shard_objects_moved_total",
            "objects whose migration started during rebalancing")
        self.received = metrics.counter(
            "shard_objects_received_total",
            "objects landed on their destination shard")
        self.move_failures = metrics.counter(
            "shard_move_failures_total",
            "migrations abandoned after exhausting retries")
        self.rebalance_bytes = metrics.counter(
            "shard_rebalance_bytes_total",
            "payload bytes carried by rebalance transfers")
        self.rebalance_rounds = metrics.counter(
            "shard_rebalance_rounds_total",
            "membership changes that triggered a rebalance pass")
        # -- tenants ----------------------------------------------------
        self.tenant_admitted = metrics.counter(
            "tenant_requests_admitted_total",
            "uploads admitted within quota, by tenant",
            label_names=("tenant",))
        self.tenant_rejected = metrics.counter(
            "tenant_requests_rejected_total",
            "uploads rejected by a quota ledger, by tenant and reason",
            label_names=("tenant", "reason"))
        self.tenant_bytes = metrics.gauge(
            "tenant_resident_bytes",
            "bytes currently charged to the tenant", label_names=("tenant",))
        # -- fan-out distribution ---------------------------------------
        self.fanout_sends = metrics.counter(
            "fanout_sends_total",
            "model updates forwarded over the tree, by hop kind",
            label_names=("hop",))
        self.fanout_depth = metrics.gauge(
            "fanout_tree_depth", "depth of the current distribution tree")
        self.fanout_rounds = metrics.counter(
            "fanout_rounds_total",
            "distribution rounds routed through the fan-out tree")
