"""Live shard rebalancing over the byte-accounted fabric.

When the ring's membership changes (shard join/leave), a slice of the
keyspace gets new owners.  The :class:`ShardRebalancer` computes the
delta between where each photo's replicas *are* (the cluster's
:class:`~repro.durability.replication.ReplicaMap`) and where the ring
now says they *should* be, then migrates objects copy-first: every
missing destination copy lands and is acknowledged before any stale
source copy is evicted, so a crash — or a shard evicted mid-rebalance —
can only ever leave surplus copies behind for
``scrub_and_repair``/``reconcile`` to settle, never a data loss.

Transfers reuse the PR 3 repair primitives (``donate_object`` /
``accept_repair``, retried fabric sends) under a ``"rebalance"`` traffic
kind, and the books are kept by a :class:`MigrationLedger` whose
conservation law ND006 proves statically::

    objects_moved == objects_received + objects_failed + objects_inflight

At quiescence ``objects_inflight`` is zero and the acceptance criterion
``moved == received (+ failed)`` falls out of the law.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.pipestore import StoreUnavailableError
from ..faults.errors import TransientFaultError
from ..faults.retry import call_with_retry
from ..lint.contracts import conserves
from ..storage.objectstore import CorruptObjectError, MissingObjectError
from ..storage.photodb import LabelRecord
from .metrics import PlacementMetrics
from .ring import ConsistentHashRing

__all__ = ["MigrationLedger", "MovePlan", "ShardRebalancer"]


@conserves("objects_moved == objects_received + objects_failed"
           " + objects_inflight")
class MigrationLedger:
    """Exact object accounting for one or more rebalance passes."""

    def __init__(self):
        self.objects_moved = 0
        self.objects_received = 0
        self.objects_failed = 0
        self.objects_inflight = 0
        #: bytes landed on destinations (plain field, not a law)
        self.bytes_received = 0

    def begin(self) -> None:
        """One migration started: the object is on the wire."""
        self.objects_moved += 1
        self.objects_inflight += 1

    def commit(self) -> None:
        """The destination acknowledged the copy."""
        self.objects_inflight -= 1
        self.objects_received += 1
        self.check()

    def abort(self) -> None:
        """Every retry failed; the source copy remains authoritative."""
        self.objects_inflight -= 1
        self.objects_failed += 1
        self.check()

    def check(self) -> None:
        if self.objects_moved != (self.objects_received
                                  + self.objects_failed
                                  + self.objects_inflight):
            raise RuntimeError(
                f"migration conservation violated: "
                f"moved={self.objects_moved} != "
                f"received={self.objects_received} + "
                f"failed={self.objects_failed} + "
                f"inflight={self.objects_inflight}")
        if self.objects_inflight < 0:
            raise RuntimeError("migration commit/abort without a begin")

    def to_dict(self) -> Dict:
        return {
            "objects_moved": self.objects_moved,
            "objects_received": self.objects_received,
            "objects_failed": self.objects_failed,
            "objects_inflight": self.objects_inflight,
            "bytes_received": self.bytes_received,
        }


class MovePlan:
    """The holder-set delta one membership change implies."""

    def __init__(self):
        #: photo -> (copy-to shards, evict-from shards, new holder order)
        self.moves: Dict[str, Tuple[List[str], List[str], List[str]]] = {}

    @property
    def photos_affected(self) -> int:
        return len(self.moves)

    @property
    def copies_needed(self) -> int:
        return sum(len(add) for add, _drop, _order in self.moves.values())


class ShardRebalancer:
    """Migrates photos to their ring-assigned shards, copy-first."""

    def __init__(self, cluster, ring: ConsistentHashRing,
                 metrics: Optional[PlacementMetrics] = None,
                 batch: int = 64):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.cluster = cluster
        self.ring = ring
        self.metrics = metrics
        self.batch = batch
        self.ledger = MigrationLedger()
        #: photos whose migration failed and needs a later pass
        self.deferred: List[str] = []

    # -- planning -------------------------------------------------------------
    def plan(self) -> MovePlan:
        """Diff actual holder sets against the ring's desired placement."""
        cluster = self.cluster
        plan = MovePlan()
        replication = min(cluster.replication, len(self.ring))
        for pid in sorted(cluster.database.snapshot_labels()):
            desired = self.ring.replica_set(pid, replication)
            current = cluster.replicas.holders(pid)
            add = [s for s in desired if s not in current]
            drop = [s for s in current if s not in desired]
            if add or drop:
                plan.moves[pid] = (add, drop, desired)
        return plan

    # -- execution --------------------------------------------------------------
    def rebalance(self) -> MigrationLedger:
        """Execute the current plan in batches; returns the ledger.

        Copy-first per photo: all destination copies land (each one
        ledger-accounted) before the database record moves and stale
        sources are evicted.  A photo whose copies cannot all land is
        deferred with its source copies intact.
        """
        if self.metrics is not None:
            self.metrics.rebalance_rounds.inc()
        plan = self.plan()
        pending = sorted(plan.moves)
        while pending:
            chunk, pending = pending[:self.batch], pending[self.batch:]
            for pid in chunk:
                add, drop, desired = plan.moves[pid]
                self._migrate_photo(pid, add, drop, desired)
        self.ledger.check()
        return self.ledger

    def _migrate_photo(self, pid: str, add: List[str], drop: List[str],
                       desired: List[str]) -> bool:
        cluster = self.cluster
        landed: List[str] = []
        for dst in add:
            if not self._copy_object(pid, dst):
                # leave the source copies authoritative; a later pass
                # (or scrub_and_repair once membership settles) retries
                self.deferred.append(pid)
                return False
            landed.append(dst)
        # every destination acknowledged — flip authority, then evict
        record = cluster.database.lookup(pid)
        cluster.database.upsert(LabelRecord(
            photo_id=pid, label=record.label,
            model_version=record.model_version,
            location=desired[0], confidence=record.confidence,
        ))
        cluster.replicas.place(pid, list(desired))
        for src in drop:
            try:
                store = cluster._resolve_store(src)
            except KeyError:
                continue  # the shard left the fleet entirely
            if store.is_available:
                store.evict_photo(pid)
        return True

    def _copy_object(self, pid: str, dst_id: str) -> bool:
        """Land both blobs + the training label of ``pid`` on ``dst``."""
        cluster = self.cluster
        dst = cluster._resolve_store(dst_id)
        if not dst.is_available:
            return False
        donation = self._donate(pid, exclude=dst_id)
        if donation is None:
            return False
        donor_id, blobs, train_label = donation
        nbytes = sum(len(b) for _key, b in blobs)
        self.ledger.begin()
        try:
            call_with_retry(
                lambda: cluster.network.send(
                    donor_id, dst_id, nbytes, "rebalance"),
                cluster.retry)
            for key, blob in blobs:
                dst.accept_repair(key, blob)
        except (TransientFaultError, StoreUnavailableError):
            self.ledger.abort()
            if self.metrics is not None:
                self.metrics.move_failures.inc()
            return False
        self.ledger.commit()
        self.ledger.bytes_received += nbytes
        if train_label is not None:
            dst.set_train_label(pid, train_label)
        if self.metrics is not None:
            self.metrics.moved.inc()
            self.metrics.received.inc()
            self.metrics.rebalance_bytes.inc(nbytes)
        return True

    def _donate(self, pid: str, exclude: str,
                ) -> Optional[Tuple[str, List[Tuple[str, bytes]], Optional[int]]]:
        """Verified blobs of ``pid`` from the first healthy holder."""
        cluster = self.cluster
        for holder in cluster.replicas.holders(pid):
            if holder == exclude:
                continue
            try:
                donor = cluster._resolve_store(holder)
            except KeyError:
                continue
            if not donor.is_available:
                continue
            blobs: List[Tuple[str, bytes]] = []
            try:
                for key in (donor.objects.raw_key(pid),
                            donor.objects.preproc_key(pid)):
                    if donor.objects.exists(key):
                        blobs.append((key, donor.donate_object(key)))
            except (CorruptObjectError, MissingObjectError,
                    StoreUnavailableError):
                continue  # this holder cannot vouch for its copy
            if not blobs:
                continue
            label = (donor.train_label(pid)
                     if donor.has_train_label(pid) else None)
            return holder, blobs, label
        return None
