"""ShardedCluster — the geo-sharded, multi-tenant NDPipe fleet.

Composes the refactored planes into the ROADMAP item-1 deployment shape:
one :class:`~repro.core.cluster.NDPipeCluster` fleet whose ingest data
plane places through a :class:`~repro.placement.ring.ConsistentHashRing`
(bounded-load, replica-spreading), per-tenant quota admission in front
of every upload, Check-N-Run distribution over a
:class:`~repro.placement.fanout.FanoutTree` instead of Tuner unicast,
and live membership changes (:meth:`ShardedCluster.join_shard` /
:meth:`ShardedCluster.leave_shard`) settled by the copy-first
:class:`~repro.placement.rebalance.ShardRebalancer`.

Anything not overridden here delegates to the wrapped cluster, so the
whole single-fleet lifecycle API (``finetune``, ``offline_relabel``,
``scrub_and_repair``, ``checkpoint`` ...) works unchanged on a sharded
fleet.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cluster import NDPipeCluster
from ..core.config import ClusterConfig
from ..core.dataplane import RingPlacement
from ..core.pipestore import PipeStore
from ..core.tuner import DistributionStats
from ..faults.retry import RetryPolicy
from ..models.split import SplitModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from .config import ShardConfig, TenantConfig
from .fanout import FanoutTree
from .metrics import PlacementMetrics
from .rebalance import MigrationLedger, ShardRebalancer
from .ring import ConsistentHashRing
from .tenants import TenantRegistry

__all__ = ["ShardedCluster"]


class ShardedCluster:
    """A consistent-hash sharded fleet behind the familiar cluster API."""

    def __init__(self, model_factory: Callable[[], SplitModel],
                 shard_config: Optional[ShardConfig] = None,
                 tenants: Iterable[TenantConfig] = (),
                 cluster_config: Optional[ClusterConfig] = None, *,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.shard_config = (shard_config if shard_config is not None
                             else ShardConfig()).validated()
        base = (cluster_config if cluster_config is not None
                else ClusterConfig()).validated()
        # the shard layer owns fleet sizing and replica width; everything
        # else (split, lr, journal policy, ...) rides the cluster config
        merged = dict(base.to_dict())
        merged["num_stores"] = self.shard_config.num_shards
        merged["replication"] = self.shard_config.replication
        self.cluster = NDPipeCluster(
            model_factory, ClusterConfig.from_dict(merged),
            retry_policy=retry_policy, metrics=metrics, tracer=tracer)
        self.metrics = PlacementMetrics(self.cluster.metrics)
        self.ring = ConsistentHashRing(
            vnodes=self.shard_config.vnodes,
            seed=self.shard_config.ring_seed,
            shards=[s.store_id for s in self.cluster.stores])
        plane = self.cluster.dataplane
        plane.placement = RingPlacement(
            plane, self.ring, load_factor=self.shard_config.load_factor)
        plane.metrics_load_skips = self.metrics.load_skips
        self.tenants = TenantRegistry(tenants, metrics=self.metrics)
        self.rebalancer = ShardRebalancer(
            self.cluster, self.ring, metrics=self.metrics,
            batch=self.shard_config.rebalance_batch)
        self._next_shard_index = self.shard_config.num_shards
        self.metrics.shard_count.set(len(self.ring))
        self.metrics.fanout_depth.set(self._tree().depth)

    # anything this façade does not redefine is the plain cluster API
    def __getattr__(self, name: str):
        return getattr(self.cluster, name)

    # -- multi-tenant ingest --------------------------------------------------
    def ingest(self, images: np.ndarray, tenant: str = "default",
               train_labels: Optional[Sequence[int]] = None,
               ) -> Tuple[List[str], List[str]]:
        """Upload a tenant's batch through quota admission + ring placement.

        Returns ``(photo_ids, rejections)``: one qualified id per admitted
        photo and one quota-reason string per rejected one.
        """
        if images.ndim != 4:
            raise ValueError(
                f"expected (N, 3, H, W) images, got {images.shape}")
        if train_labels is not None and len(train_labels) != len(images):
            raise ValueError("train_labels length mismatch")
        cluster = self.cluster
        plane = cluster.dataplane
        ids: List[str] = []
        rejections: List[str] = []
        with cluster.tracer.span("fleet.ingest", tenant=tenant,
                                 photos=len(images)):
            for row, pixels in enumerate(images):
                reason = self.tenants.admit(tenant, int(pixels.nbytes))
                if reason is not None:
                    rejections.append(reason)
                    continue
                label, confidence = cluster.inference_server.classify(pixels)
                preprocessed = cluster.inference_server.preprocess(pixels)
                train_label = (None if train_labels is None
                               else int(train_labels[row]))
                photo_id = (f"{tenant}/photo-"
                            f"{plane.ingest_counter:08d}")
                ids.append(plane.land_upload(
                    pixels, preprocessed, label, confidence, train_label,
                    photo_id=photo_id))
                self.metrics.placements.inc(
                    shard=cluster.database.lookup(photo_id).location)
        return ids, rejections

    # -- fan-out model distribution --------------------------------------------
    def _tree(self) -> FanoutTree:
        return FanoutTree([s.store_id for s in self.cluster.stores],
                          fanout=self.shard_config.fanout)

    def distribute(self, fanout: bool = True) -> DistributionStats:
        """One Check-N-Run round: tree-shaped by default, unicast on demand."""
        if not fanout:
            return self.cluster.tuner.distribute_update()
        tree = self._tree()
        alive = [s.store_id for s in self.cluster.stores if s.is_available]
        plan = tree.plan(available=alive)
        # down stores neither receive nor relay, but the Tuner's
        # send_order invariant covers the whole registered fleet — append
        # them at the tail, where the round records them as missed
        plan["send_order"] = list(plan["send_order"]) + [
            s.store_id for s in self.cluster.stores
            if not s.is_available]
        stats = self.cluster.tuner.distribute_update(**plan)
        self.metrics.fanout_rounds.inc()
        self.metrics.fanout_depth.set(tree.depth)
        relayed = len(stats.stores_relayed)
        reached = (len(self.cluster.stores) - len(stats.stores_missed)
                   - len(stats.stores_fenced))
        if relayed:
            self.metrics.fanout_sends.inc(relayed, hop="relay")
        if reached - relayed > 0:
            self.metrics.fanout_sends.inc(reached - relayed, hop="uplink")
        return stats

    def finetune(self, *args, fanout: bool = True, **kwargs):
        """FT-DMP round; redistribution goes over the fan-out tree."""
        kwargs["distribute"] = False
        report = self.cluster.finetune(*args, **kwargs)
        self.distribute(fanout=fanout)
        return report

    # -- membership ------------------------------------------------------------
    def join_shard(self, store_id: Optional[str] = None) -> Dict:
        """Bring one new shard into the fleet and rebalance onto it.

        Returns exact movement accounting: ``photos_total``,
        ``photos_moved`` (distinct photos whose holder set changed),
        ``moved_fraction``, and the migration ledger snapshot.
        """
        cluster = self.cluster
        if store_id is None:
            store_id = f"pipestore-{self._next_shard_index}"
        self._next_shard_index += 1
        store = PipeStore(
            store_id, nominal_raw_bytes=cluster.config.nominal_raw_bytes)
        store.bind_metrics(cluster.metrics)
        cluster.tuner.register(store, cluster.model_factory())
        cluster.stores.append(store)
        self.ring.add_shard(store_id)
        self.metrics.shard_count.set(len(self.ring))
        return self._settle(store_id, "join")

    def leave_shard(self, store_id: str) -> Dict:
        """Drain one shard out of the fleet: move its keyspace, then drop it.

        The leaving shard stays online as a migration donor until every
        photo it owned has landed elsewhere; it is removed from the fleet
        afterwards (photos it still holds were evicted by the mover).
        """
        cluster = self.cluster
        self.ring.remove_shard(store_id)
        self.metrics.shard_count.set(len(self.ring))
        summary = self._settle(store_id, "leave")
        cluster.stores[:] = [s for s in cluster.stores
                             if s.store_id != store_id]
        cluster.tuner.adopt_fleet(
            [s for s in cluster.tuner.stores if s.store_id != store_id])
        return summary

    def _settle(self, store_id: str, event: str) -> Dict:
        photos_total = len(self.cluster.database)
        replication = min(self.cluster.replication, max(len(self.ring), 1))
        objects_total = photos_total * replication
        plan = self.rebalancer.plan()
        ledger_before = self.rebalancer.ledger.to_dict()
        self.rebalancer.rebalance()
        ledger = self.rebalancer.ledger.to_dict()
        copies = {k: ledger[k] - ledger_before[k] for k in ledger}
        return {
            "event": event,
            "shard": store_id,
            "num_shards": len(self.ring),
            "photos_total": photos_total,
            "photos_affected": plan.photos_affected,
            "objects_total": objects_total,
            "objects_moved": copies["objects_moved"],
            # the headline number: fraction of stored object copies that
            # crossed the network for this membership change — the ring's
            # guarantee is <= 1/N (+ vnode variance)
            "moved_fraction": (copies["objects_moved"] / objects_total
                               if objects_total else 0.0),
            "copies": copies,
            "ledger": ledger,
        }

    # -- reporting ---------------------------------------------------------------
    def placement_summary(self) -> Dict[str, int]:
        """Photos per shard, from the authoritative database."""
        counts = {s.store_id: 0 for s in self.cluster.stores}
        for pid, _label in self.cluster.database.snapshot_labels().items():
            counts[self.cluster.database.lookup(pid).location] = \
                counts.get(self.cluster.database.lookup(pid).location, 0) + 1
        return counts

    def ledger(self) -> MigrationLedger:
        return self.rebalancer.ledger
