"""Geo-sharded multi-tenant placement layer (ROADMAP item 1).

One documented namespace for the sharded-fleet API.  The fleet in three
imports:

.. code-block:: python

    from repro.models.registry import tiny_model
    from repro.placement import ShardConfig, ShardedCluster, TenantConfig

    fleet = ShardedCluster(
        lambda: tiny_model("ResNet50"),
        ShardConfig(num_shards=8, replication=2),
        tenants=[TenantConfig(name="acme", byte_quota=10 << 30)])
    photo_ids, rejections = fleet.ingest(images, tenant="acme")
    fleet.finetune()          # redistribution rides the fan-out tree
    fleet.join_shard()        # live rebalance, <= 1/N of copies move

Module tour:

* :mod:`~repro.placement.config` — frozen :class:`ShardConfig` /
  :class:`TenantConfig` value objects;
* :mod:`~repro.placement.ring` — keyed consistent-hash ring with
  bounded-load routing;
* :mod:`~repro.placement.tenants` — per-tenant namespaces and
  conservation-law quota ledgers;
* :mod:`~repro.placement.fanout` — the Check-N-Run fan-out tree;
* :mod:`~repro.placement.rebalance` — copy-first live migration with
  exact moved/received/inflight accounting;
* :mod:`~repro.placement.fleet` — :class:`ShardedCluster`, the façade
  composing all of the above over one
  :class:`~repro.core.cluster.NDPipeCluster`.

This package also keeps deprecated aliases for placement-flavoured
symbols that the cluster decomposition moved into
:mod:`repro.core.dataplane`; importing them from here warns once and
resolves to the current home.
"""

import warnings as _warnings

from .config import ShardConfig, TenantConfig
from .fanout import FanoutTree
from .fleet import ShardedCluster
from .metrics import PlacementMetrics
from .rebalance import MigrationLedger, MovePlan, ShardRebalancer
from .ring import ConsistentHashRing, RingError
from .tenants import (
    QuotaLedger,
    TenantNamespace,
    TenantRegistry,
    UnknownTenantError,
    split_key,
)

__all__ = [
    "ConsistentHashRing",
    "FanoutTree",
    "MigrationLedger",
    "MovePlan",
    "PlacementMetrics",
    "QuotaLedger",
    "RingError",
    "ShardConfig",
    "ShardRebalancer",
    "ShardedCluster",
    "TenantConfig",
    "TenantNamespace",
    "TenantRegistry",
    "UnknownTenantError",
    "split_key",
]

#: placement-policy symbols that live in the core data plane (they are
#: the seam the single-shard cluster also uses); importable from here
#: for discoverability, with a pointer at the canonical home
_DEPRECATED_ALIASES = {
    "RingPlacement": ("repro.core.dataplane", "RingPlacement",
                      "repro.core.dataplane.RingPlacement"),
    "RoundRobinPlacement": ("repro.core.dataplane", "RoundRobinPlacement",
                            "repro.core.dataplane.RoundRobinPlacement"),
    "IngestDataPlane": ("repro.core.dataplane", "IngestDataPlane",
                        "repro.core.dataplane.IngestDataPlane"),
}


def __getattr__(name):
    """PEP 562 hook: serve deprecated aliases with a warning."""
    try:
        module_name, attr, replacement = _DEPRECATED_ALIASES[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    _warnings.warn(
        f"repro.placement.{name} is deprecated; import {replacement} "
        "instead",
        DeprecationWarning, stacklevel=2)
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(__all__) | set(_DEPRECATED_ALIASES))
