"""Shared sharding benchmark: the ROADMAP item-1 acceptance numbers.

Three parts, one result dict (both ``repro shard-bench`` and
``benchmarks/bench_sharding.py`` run this, so the CLI smoke number and
the recorded ``BENCH_sharding.json`` trajectory can never drift apart):

* **placement** — a multi-tenant Zipf trace over a ~1M-user population
  is placed through the consistent-hash ring; records keyspace spread,
  quota-admission accounting, and the exact number of keys a shard
  join/leave re-homes (the ring's ≤ 1/N guarantee, counted not claimed);
* **fanout** — two identically-seeded sharded fleets fine-tune one
  round each and redistribute the same delta, one by Tuner unicast and
  one over the fan-out tree; records each strategy's exact Tuner-egress
  bytes at equal model freshness;
* **migration** — a live ``join_shard`` on a replicated fleet, with the
  migration ledger's exact moved/received/inflight accounting and a
  post-join scrub proving zero unrecoverable photos.

Every headline number is a deterministic integer counter for a given
seed, so the perf gate pins them ``exact``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..models.registry import tiny_model
from ..obs.tracing import wall_clock
from ..workloads.continuous import multi_tenant_trace
from .config import ShardConfig, TenantConfig
from .fleet import ShardedCluster
from .ring import ConsistentHashRing
from .tenants import QuotaLedger

__all__ = ["run_sharding_bench", "SHARDING_BENCH_DEFAULTS"]

#: the trace/fleet the recorded BENCH_sharding.json numbers come from
SHARDING_BENCH_DEFAULTS = {
    "num_shards": 8,
    "vnodes": 64,
    "replication": 2,
    "fanout": 2,
    "num_uploads": 200_000,
    "num_users": 1_000_000,
    "skew": 1.1,
    "tenants": {"acme": 3.0, "globex": 1.5, "initech": 1.0},
    "upload_bytes": 8192,
    "fleet_photos": 96,
}


def _placement_part(seed: int, p: Dict) -> Dict:
    """Part A: population-scale ring placement + quota admission."""
    trace = multi_tenant_trace(
        p["num_uploads"], p["tenants"], num_users=p["num_users"],
        skew=p["skew"], seed=seed)
    ids = trace.photo_ids()
    ring = ConsistentHashRing(
        vnodes=p["vnodes"], seed=seed,
        shards=[f"shard-{i}" for i in range(p["num_shards"])])
    t0 = wall_clock()
    before = ring.placement_map(ids)
    map_s = wall_clock() - t0
    counts = {s: 0 for s in ring.shards}
    for shard in before.values():
        counts[shard] += 1
    mean = len(ids) / len(ring)
    # join a shard: only keys re-homed TO the newcomer may move
    ring.add_shard(f"shard-{p['num_shards']}")
    after_join = ring.placement_map(ids)
    join_moved = ConsistentHashRing.moved_keys(before, after_join)
    join_clean = all(after_join[k] == f"shard-{p['num_shards']}"
                     for k in join_moved)
    # leave again: movement bounded by what the leaver owned
    ring.remove_shard(f"shard-{p['num_shards']}")
    after_leave = ring.placement_map(after_join)
    leave_moved = ConsistentHashRing.moved_keys(after_join, after_leave)
    # quota admission over the whole trace, bulk-accounted per tenant:
    # acme's byte quota covers ~60% of its offered bytes, so the ledger
    # provably rejects (and the conservation law holds at scale)
    tenant_counts = trace.tenant_counts()
    quotas = {
        "acme": int(tenant_counts["acme"] * p["upload_bytes"] * 0.6),
        "globex": None,
        "initech": None,
    }
    admission = {}
    for name in trace.tenants:
        ledger = QuotaLedger(byte_quota=quotas[name])
        rejected = 0
        for _ in range(tenant_counts[name]):
            if ledger.offer(p["upload_bytes"]) is not None:
                rejected += 1
        ledger.check()
        admission[name] = {
            "offered": tenant_counts[name],
            "admitted": ledger.admitted,
            "rejected": rejected,
            "resident_bytes": ledger.resident_bytes,
        }
    return {
        "keys": len(ids),
        "num_users": p["num_users"],
        "distinct_users": trace.distinct_users(),
        "keys_per_s": len(ids) / map_s if map_s > 0 else 0.0,
        "shard_counts": counts,
        "spread_max_over_mean": max(counts.values()) / mean,
        "join": {
            "moved": len(join_moved),
            "fraction": len(join_moved) / len(ids),
            "bound": 1.0 / (p["num_shards"] + 1) + 0.10,
            "all_to_new_shard": join_clean,
        },
        "leave": {
            "moved": len(leave_moved),
            "fraction": len(leave_moved) / len(ids),
            "bound": 1.0 / (p["num_shards"] + 1) + 0.10,
        },
        "admission": admission,
    }


def _build_fleet(seed: int, p: Dict, metrics=None) -> ShardedCluster:
    return ShardedCluster(
        lambda: tiny_model("ResNet50", num_classes=8, width=8, seed=7),
        ShardConfig(num_shards=p["num_shards"], vnodes=p["vnodes"],
                    ring_seed=seed, replication=p["replication"],
                    fanout=p["fanout"]),
        tenants=[TenantConfig(name=n, weight=w)
                 for n, w in sorted(p["tenants"].items())],
        metrics=metrics)


def _seed_corpus(fleet: ShardedCluster, seed: int, p: Dict) -> None:
    rng = np.random.default_rng(seed + 1)
    shape = fleet.cluster.tuner.model.input_shape
    images = rng.random((p["fleet_photos"],) + tuple(shape),
                        dtype=np.float32)
    labels = rng.integers(0, 8, size=p["fleet_photos"])
    per = p["fleet_photos"] // len(p["tenants"])
    for i, tenant in enumerate(sorted(p["tenants"])):
        lo = i * per
        hi = p["fleet_photos"] if i == len(p["tenants"]) - 1 else lo + per
        fleet.ingest(images[lo:hi], tenant=tenant,
                     train_labels=labels[lo:hi])


def _tuner_egress(fleet: ShardedCluster) -> int:
    net = fleet.cluster.network
    tuner = fleet.cluster.tuner.name
    return sum(net.bytes_between(tuner, s.store_id)
               for s in fleet.cluster.stores)


def _fanout_part(seed: int, p: Dict) -> Dict:
    """Part B: unicast vs tree distribution of the identical delta."""
    results = {}
    for strategy in ("unicast", "fanout"):
        fleet = _build_fleet(seed, p)
        _seed_corpus(fleet, seed, p)
        egress_before = _tuner_egress(fleet)
        fleet.finetune(epochs=1, num_runs=1, fanout=(strategy == "fanout"))
        versions = sorted({s.model_version
                           for s in fleet.cluster.stores})
        results[strategy] = {
            "tuner_egress_bytes": _tuner_egress(fleet) - egress_before,
            "store_versions": versions,
            "tuner_version": fleet.cluster.tuner.version,
            "relayed": int(fleet.metrics.fanout_sends.value(hop="relay")
                           if strategy == "fanout" else 0),
        }
    uni = results["unicast"]["tuner_egress_bytes"]
    fan = results["fanout"]["tuner_egress_bytes"]
    return {
        **results,
        "freshness_equal": (
            results["unicast"]["store_versions"]
            == results["fanout"]["store_versions"]
            and len(results["fanout"]["store_versions"]) == 1),
        "egress_saving_bytes": uni - fan,
        "egress_saving_fraction": (uni - fan) / uni if uni else 0.0,
    }


def _migration_part(seed: int, p: Dict) -> Dict:
    """Part C: live join on a replicated fleet, ledger-exact."""
    fleet = _build_fleet(seed, p)
    _seed_corpus(fleet, seed, p)
    summary = fleet.join_shard()
    scrub = fleet.scrub_and_repair()
    ledger = fleet.ledger().to_dict()
    return {
        "join": {k: summary[k]
                 for k in ("shard", "num_shards", "photos_total",
                           "objects_total", "objects_moved",
                           "moved_fraction")},
        "bound": 1.0 / summary["num_shards"] + 0.10,
        "within_bound": summary["moved_fraction"]
        <= 1.0 / summary["num_shards"] + 0.10,
        "ledger": ledger,
        "rebalance_bytes": int(fleet.metrics.rebalance_bytes.total()),
        "unrecoverable": len(scrub.unrecoverable),
    }


def run_sharding_bench(seed: int = 0,
                       overrides: Optional[Dict] = None) -> Dict:
    """Run all three parts; returns the canonical result dict."""
    p = dict(SHARDING_BENCH_DEFAULTS)
    if overrides:
        unknown = sorted(set(overrides) - set(p))
        if unknown:
            raise ValueError(
                f"unknown overrides {unknown}; pick from {sorted(p)}")
        p.update(overrides)
    return {
        "seed": seed,
        "config": p,
        "placement": _placement_part(seed, p),
        "fanout": _fanout_part(seed, p),
        "migration": _migration_part(seed, p),
    }
