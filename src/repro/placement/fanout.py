"""Check-N-Run fan-out tree: O(log N) model distribution (§6 scaled).

Unicast distribution costs the Tuner one uplink send per store — N
model-delta transfers leaving one NIC.  The fan-out tree instead has the
Tuner send to ``fanout`` roots, and every store that has verified its
delta relay it to up to ``fanout`` children, so Tuner egress is
``min(fanout, N)`` sends and the round completes in ``O(log_fanout N)``
relay generations.

The tree is an array layout over the store order: with branching ``d``,
stores ``A[0..d-1]`` are roots fed by the Tuner, and ``A[j]`` feeds
``A[d*(j+1) .. d*(j+1)+d-1]``.  Processing stores in array order is a
valid BFS: every parent appears before its children, which is exactly
the contract :meth:`repro.core.tuner.Tuner.distribute_update` needs for
its ``send_order``/``senders`` parameters.  A parent that misses the
round (down, fenced, or resynced with a full model it cannot re-encode)
is transparently replaced by the Tuner as the sender, so fault handling
stays identical to unicast — the tree only changes who pays the egress
bytes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

__all__ = ["FanoutTree"]


class FanoutTree:
    """A d-ary distribution tree over an ordered store fleet."""

    def __init__(self, store_ids: Sequence[str], fanout: int = 2):
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        ids = list(store_ids)
        if len(set(ids)) != len(ids):
            raise ValueError("store ids must be unique")
        self.fanout = fanout
        self.store_ids = ids

    # -- routing plan --------------------------------------------------------
    @property
    def send_order(self) -> List[str]:
        """BFS order: the array order itself (parents precede children)."""
        return list(self.store_ids)

    @property
    def senders(self) -> Dict[str, str]:
        """``{store_id: parent store_id}``; roots are absent (Tuner-fed)."""
        out: Dict[str, str] = {}
        for k, sid in enumerate(self.store_ids):
            if k >= self.fanout:
                out[sid] = self.store_ids[k // self.fanout - 1]
        return out

    def children(self, store_id: str) -> List[str]:
        """Stores this one relays to (empty for leaves)."""
        j = self.store_ids.index(store_id)
        lo = self.fanout * (j + 1)
        return self.store_ids[lo:lo + self.fanout]

    def roots(self) -> List[str]:
        """Stores fed directly from the Tuner."""
        return self.store_ids[:self.fanout]

    @property
    def depth(self) -> int:
        """Relay generations from the Tuner to the deepest leaf."""
        depth = 0
        senders = self.senders
        for sid in self.store_ids:
            hops, cursor = 1, sid
            while cursor in senders:
                cursor = senders[cursor]
                hops += 1
            depth = max(depth, hops)
        return depth

    @staticmethod
    def ideal_depth(n: int, fanout: int) -> int:
        """``ceil(log_fanout(n*(fanout-1)/fanout + 1))`` lower bound on
        generations; handy for asserting the array layout is balanced."""
        if n <= 0:
            return 0
        if fanout == 1:
            return n
        return max(1, math.ceil(
            math.log(n * (fanout - 1) / fanout + 1, fanout)))

    def plan(self, available: Optional[Sequence[str]] = None,
             ) -> Dict[str, object]:
        """Routing plan for one round, as ``distribute_update`` kwargs.

        ``available`` (if given) restricts the tree to those stores —
        down stores neither receive nor relay — while keeping the
        relative array order, so the tree stays balanced as the fleet
        degrades.
        """
        if available is None:
            tree = self
        else:
            alive = set(available)
            tree = FanoutTree(
                [s for s in self.store_ids if s in alive], self.fanout)
        return {"send_order": tree.send_order, "senders": tree.senders}
