"""Consistent-hash ring: deterministic photo -> shard placement.

Every shard owns ``vnodes`` points on a 64-bit ring; a key lands on the
first vnode clockwise from its own hash.  The hash is keyed blake2b, so
placement is deterministic across processes and Python hash
randomisation, and two rings built with the same ``seed`` and the same
membership — in *any* join order — agree on every key.

Properties the suite proves (``tests/placement/test_ring.py``):

* **determinism** — placement is a pure function of (seed, membership);
* **minimal movement** — adding a shard only moves keys *onto* the new
  shard (≈ ``K/N`` of them); removing one only moves keys *off* it;
* **distinct replicas** — ``replica_set`` walks clockwise collecting
  *shards*, never two vnodes of the same shard.

``pick`` optionally applies bounded-load routing (the
consistent-hashing-with-bounded-loads trick): walking clockwise, shards
whose reported load exceeds ``load_factor`` x the fleet mean are skipped,
so a slow shard sheds fresh ingest onto its ring successors instead of
queueing it.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = ["ConsistentHashRing", "RingError"]


class RingError(RuntimeError):
    """Raised for invalid ring operations (empty ring, duplicate shard)."""


def _hash64(seed: int, domain: str, text: str) -> int:
    """Keyed 64-bit ring position; stable across processes and runs."""
    digest = blake2b(f"{domain}:{text}".encode(),
                     digest_size=8, key=str(seed).encode())
    return int.from_bytes(digest.digest(), "big")


class ConsistentHashRing:
    """vnode consistent hashing over named shards."""

    def __init__(self, vnodes: int = 64, seed: int = 0,
                 shards: Iterable[str] = ()):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self.seed = seed
        self._shards: List[str] = []
        #: sorted vnode positions and their owning shard, kept parallel
        self._tokens: List[int] = []
        self._owners: List[str] = []
        for shard in shards:
            self.add_shard(shard)

    # -- membership ---------------------------------------------------------
    @property
    def shards(self) -> List[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: str) -> bool:
        return shard_id in self._shards

    def add_shard(self, shard_id: str) -> None:
        """Join one shard: inserts its vnodes, all other tokens stay put."""
        if shard_id in self._shards:
            raise RingError(f"shard {shard_id!r} is already on the ring")
        self._shards.append(shard_id)
        for v in range(self.vnodes):
            token = _hash64(self.seed, "vnode", f"{shard_id}#{v}")
            at = bisect.bisect_left(self._tokens, token)
            # keyed-64-bit collisions are ~impossible, but break ties by
            # shard id so equal tokens still order deterministically
            while at < len(self._tokens) and self._tokens[at] == token \
                    and self._owners[at] < shard_id:
                at += 1
            self._tokens.insert(at, token)
            self._owners.insert(at, shard_id)

    def remove_shard(self, shard_id: str) -> None:
        """Leave: drops the shard's vnodes, its keyspace falls clockwise."""
        if shard_id not in self._shards:
            raise RingError(f"shard {shard_id!r} is not on the ring")
        self._shards.remove(shard_id)
        keep = [i for i, owner in enumerate(self._owners)
                if owner != shard_id]
        self._tokens = [self._tokens[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    # -- placement ----------------------------------------------------------
    def _successors(self, key: str) -> Iterable[str]:
        """Distinct shards clockwise from the key's ring position."""
        if not self._shards:
            raise RingError("the ring has no shards")
        start = bisect.bisect_right(self._tokens,
                                    _hash64(self.seed, "key", key))
        seen: set = set()
        for step in range(len(self._tokens)):
            owner = self._owners[(start + step) % len(self._tokens)]
            if owner not in seen:
                seen.add(owner)
                yield owner

    def primary(self, key: str) -> str:
        """The shard owning ``key`` (first vnode clockwise)."""
        return next(iter(self._successors(key)))

    def replica_set(self, key: str, k: int) -> List[str]:
        """``k`` distinct shards for ``key``: primary first, then the
        clockwise successors — never two slots on one shard."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if k > len(self._shards):
            raise RingError(
                f"cannot place {k} replicas on {len(self._shards)} shards")
        out: List[str] = []
        for shard in self._successors(key):
            out.append(shard)
            if len(out) == k:
                break
        return out

    def pick(self, key: str,
             load_of: Optional[Callable[[str], float]] = None,
             load_factor: float = 1.25,
             available: Optional[Callable[[str], bool]] = None) -> str:
        """Placement for fresh ingest: consistent hashing, load-bounded.

        Without ``load_of`` this is :meth:`primary` (filtered by
        ``available``).  With it, the clockwise walk skips shards whose
        load exceeds ``load_factor`` x the mean load of the available
        fleet — bounded-load consistent hashing — and falls back to the
        least-loaded available shard when every candidate is above the
        bound (all-overloaded fleets still place).
        """
        if load_factor < 1.0:
            raise ValueError(
                f"load_factor must be >= 1.0, got {load_factor}")
        candidates = [s for s in self._successors(key)
                      if available is None or available(s)]
        if not candidates:
            raise RingError(f"no available shard for key {key!r}")
        if load_of is None:
            return candidates[0]
        loads = {s: float(load_of(s)) for s in candidates}
        mean = sum(loads.values()) / len(loads)
        bound = load_factor * mean
        for shard in candidates:
            if loads[shard] <= bound:
                return shard
        return min(candidates, key=lambda s: loads[s])

    def assignments(self, keys: Sequence[str]) -> Dict[str, List[str]]:
        """Bulk primary placement: ``{shard_id: [keys...]}`` (all shards
        present, even empty ones)."""
        out: Dict[str, List[str]] = {s: [] for s in self._shards}
        for key in keys:
            out[self.primary(key)].append(key)
        return out

    # -- movement accounting ------------------------------------------------
    @staticmethod
    def moved_keys(before: Dict[str, str], after: Dict[str, str],
                   ) -> List[str]:
        """Keys whose primary shard differs between two placement maps."""
        return sorted(k for k, shard in before.items()
                      if after.get(k) != shard)

    def placement_map(self, keys: Sequence[str]) -> Dict[str, str]:
        """``{key: primary shard}`` for a key population."""
        return {key: self.primary(key) for key in keys}
