"""``repro.inference`` — online and offline inference paths."""

from .offline import (
    CampaignEstimate,
    campaign_comparison,
    ndpipe_campaign,
    srv_campaign,
)
from .online import (
    OnlineBatchLatencyModel,
    OnlineInferencePath,
    OnlineLatencyModel,
    batched_online_latency,
    online_latency,
)

__all__ = [
    "CampaignEstimate", "ndpipe_campaign", "srv_campaign",
    "campaign_comparison",
    "OnlineInferencePath", "OnlineLatencyModel", "online_latency",
    "OnlineBatchLatencyModel", "batched_online_latency",
]
