"""Online inference path: label a photo at upload time (§3.1 flow 1-3).

Wraps the runnable :class:`repro.core.cluster.InferenceServer` with a
latency model so ingestion workloads can reason about end-to-end upload
latency (preprocess + single-image inference + database update).

:func:`batched_online_latency` extends the model to the serving layer's
adaptive micro-batching: the NPE batch-size-enlargement logic picks the
batch, and the per-request latency becomes accumulation (waiting for the
batch to fill at the offered rate) plus the batched forward pass.
:class:`OnlineInferencePath` predates :class:`repro.serving.ServingFrontend`
and survives for single-upload callers; new request-level code should go
through the serving layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.cluster import InferenceServer
from ..models.graph import ModelGraph
from ..serving.batcher import slo_batch_size
from ..sim.specs import AcceleratorSpec, TESLA_V100
from ..storage.photodb import LabelRecord, PhotoDatabase


@dataclass(frozen=True)
class OnlineLatencyModel:
    """Per-upload latency components on the inference server."""

    preprocess_s: float
    inference_s: float
    db_update_s: float = 0.0005

    @property
    def total_s(self) -> float:
        return self.preprocess_s + self.inference_s + self.db_update_s


def online_latency(graph: ModelGraph,
                   accelerator: AcceleratorSpec = TESLA_V100,
                   preprocess_ips: float = 15.4) -> OnlineLatencyModel:
    """Estimate upload-path latency for one photo (batch size 1)."""
    return OnlineLatencyModel(
        preprocess_s=1.0 / preprocess_ips,
        inference_s=1.0 / accelerator.inference_ips(graph, batch_size=1),
    )


@dataclass(frozen=True)
class OnlineBatchLatencyModel:
    """Per-request latency under adaptive micro-batching."""

    batch_size: int
    #: time for the batch to fill at the offered arrival rate
    accumulation_s: float
    inference_s: float
    db_update_s: float = 0.0005

    @property
    def total_s(self) -> float:
        return self.accumulation_s + self.inference_s + self.db_update_s

    @property
    def throughput_rps(self) -> float:
        """Saturated request rate of one replica at this batch size."""
        service_s = self.inference_s + self.db_update_s
        if service_s <= 0:
            return float("inf")
        return self.batch_size / service_s


def batched_online_latency(graph: ModelGraph,
                           accelerator: AcceleratorSpec = TESLA_V100,
                           slo_s: float = 0.1,
                           rate_rps: float = 1000.0,
                           ) -> OnlineBatchLatencyModel:
    """Upload-path latency when the serving layer batches uploads.

    The batch size comes from the same NPE batch-size-enlargement sweep
    the :class:`repro.serving.SloController` is seeded with, so this
    model and the runnable front end agree on the operating point.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    batch = slo_batch_size(graph, accelerator, slo_s)
    return OnlineBatchLatencyModel(
        batch_size=batch,
        accumulation_s=batch / rate_rps,
        inference_s=batch / accelerator.inference_ips(graph,
                                                      batch_size=batch),
    )


class OnlineInferencePath:
    """Runnable upload path: classify, record, return the label."""

    def __init__(self, server: InferenceServer, database: PhotoDatabase,
                 model_version: int = 0):
        self.server = server
        self.database = database
        self.model_version = model_version
        self.uploads = 0

    def upload(self, photo_id: str, pixels: np.ndarray,
               location: str) -> Tuple[int, float]:
        """Label one upload and index it; returns (label, confidence)."""
        label, confidence = self.server.classify(pixels)
        self.database.upsert(LabelRecord(
            photo_id=photo_id, label=label, model_version=self.model_version,
            location=location, confidence=confidence,
        ))
        self.uploads += 1
        return label, confidence
