"""Online inference path: label a photo at upload time (§3.1 flow 1-3).

Wraps the runnable :class:`repro.core.cluster.InferenceServer` with a
latency model so ingestion workloads can reason about end-to-end upload
latency (preprocess + single-image inference + database update).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.cluster import InferenceServer
from ..models.graph import ModelGraph
from ..sim.specs import AcceleratorSpec, TESLA_V100
from ..storage.photodb import LabelRecord, PhotoDatabase


@dataclass(frozen=True)
class OnlineLatencyModel:
    """Per-upload latency components on the inference server."""

    preprocess_s: float
    inference_s: float
    db_update_s: float = 0.0005

    @property
    def total_s(self) -> float:
        return self.preprocess_s + self.inference_s + self.db_update_s


def online_latency(graph: ModelGraph,
                   accelerator: AcceleratorSpec = TESLA_V100,
                   preprocess_ips: float = 15.4) -> OnlineLatencyModel:
    """Estimate upload-path latency for one photo (batch size 1)."""
    return OnlineLatencyModel(
        preprocess_s=1.0 / preprocess_ips,
        inference_s=1.0 / accelerator.inference_ips(graph, batch_size=1),
    )


class OnlineInferencePath:
    """Runnable upload path: classify, record, return the label."""

    def __init__(self, server: InferenceServer, database: PhotoDatabase,
                 model_version: int = 0):
        self.server = server
        self.database = database
        self.model_version = model_version
        self.uploads = 0

    def upload(self, photo_id: str, pixels: np.ndarray,
               location: str) -> Tuple[int, float]:
        """Label one upload and index it; returns (label, confidence)."""
        label, confidence = self.server.classify(pixels)
        self.database.upsert(LabelRecord(
            photo_id=photo_id, label=label, model_version=self.model_version,
            location=location, confidence=confidence,
        ))
        self.uploads += 1
        return label, confidence
