"""Offline-inference campaigns: refresh outdated labels near the data.

Combines the runnable path (PipeStores re-infer their local photos through
:meth:`repro.core.cluster.NDPipeCluster.offline_relabel`) with the
simulated fleet timing (how long a campaign over N billion photos would
take, and at what energy) used by the Fig. 13/14 experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..models.graph import ModelGraph
from ..sim.specs import LABEL_BYTES, ServerSpec, G4DN_4XLARGE
from ..train.baselines import ndpipe_inference, srv_inference


@dataclass(frozen=True)
class CampaignEstimate:
    """Predicted cost of relabelling ``num_photos`` under one system."""

    system: str
    num_photos: int
    duration_s: float
    energy_kj: float
    network_bytes: float

    @property
    def throughput_ips(self) -> float:
        return self.num_photos / self.duration_s


def ndpipe_campaign(graph: ModelGraph, num_photos: int, num_stores: int,
                    store: ServerSpec = G4DN_4XLARGE,
                    batch_size: int = 128) -> CampaignEstimate:
    """Relabel ``num_photos`` with NDPipe: only labels cross the network."""
    point = ndpipe_inference(graph, num_stores, store, batch_size)
    duration = point.time_for(num_photos)
    return CampaignEstimate(
        system=f"NDPipe x{num_stores}",
        num_photos=num_photos,
        duration_s=duration,
        energy_kj=point.energy_kj_for(num_photos),
        network_bytes=float(num_photos) * LABEL_BYTES,
    )


def srv_campaign(graph: ModelGraph, num_photos: int, variant: str = "SRV-C",
                 ) -> CampaignEstimate:
    """Relabel ``num_photos`` centrally: every binary crosses the network."""
    from ..sim.specs import COMPRESSED_PREPROCESSED_BYTES, PREPROCESSED_BYTES

    point = srv_inference(variant, graph)
    per_image = (0 if variant == "SRV-I" else
                 COMPRESSED_PREPROCESSED_BYTES if variant == "SRV-C"
                 else PREPROCESSED_BYTES)
    duration = point.time_for(num_photos)
    return CampaignEstimate(
        system=variant,
        num_photos=num_photos,
        duration_s=duration,
        energy_kj=point.energy_kj_for(num_photos),
        network_bytes=float(num_photos) * per_image,
    )


def campaign_comparison(graph: ModelGraph, num_photos: int, num_stores: int,
                        ) -> Dict[str, CampaignEstimate]:
    """NDPipe vs all three SRV variants for one relabelling campaign."""
    results = {
        variant: srv_campaign(graph, num_photos, variant)
        for variant in ("SRV-I", "SRV-P", "SRV-C")
    }
    results["NDPipe"] = ndpipe_campaign(graph, num_photos, num_stores)
    return results
