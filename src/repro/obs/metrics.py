"""MetricsRegistry — labelled counters, gauges, and histograms.

The cluster's argument is quantitative (per-stage NPE bottlenecks,
FT-DMP traffic vs. baselines, Check-N-Run delta ratios), so every hot
path reports into one shared registry instead of ad-hoc attributes
scattered across objects.  The registry exports two machine-readable
views:

* :meth:`MetricsRegistry.export_prometheus` — the Prometheus text
  exposition format (``# HELP`` / ``# TYPE`` / samples with labels),
  scrapeable as-is;
* :meth:`MetricsRegistry.export_json` — a nested dict for the bench
  trajectory and tests.

All instruments are thread-safe: the NPE's :class:`ThreadedPipeline`
reports from worker threads while the Tuner reports from the caller.
"""

from __future__ import annotations

import json
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..lint.guards import guarded_by

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS"]

#: default histogram buckets (seconds-flavoured, like Prometheus defaults)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

LabelValues = Tuple[str, ...]


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_labels(label_names: Sequence[str], values: LabelValues) -> str:
    if not label_names:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in zip(label_names, values)
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Instrument:
    """Common label handling for one metric family."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        self.name = _validate_name(name)
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[k]) for k in self.label_names)


@guarded_by("_lock", "_values")
class Counter(_Instrument):
    """A monotonically increasing sum, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        with self._lock:
            return sum(self._values.values())

    def samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            return [
                (self.name + _format_labels(self.label_names, key), value)
                for key, value in sorted(self._values.items())
            ]

    def as_dict(self) -> Dict:
        with self._lock:
            if not self.label_names:
                return {"value": self._values.get((), 0.0)}
            return {
                "labels": list(self.label_names),
                "values": [
                    {"labels": list(key), "value": value}
                    for key, value in sorted(self._values.items())
                ],
            }


@guarded_by("_lock", "_values")
class Gauge(_Instrument):
    """A value that can go up and down (journal size, fleet health)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        super().__init__(name, help, label_names)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    samples = Counter.samples
    as_dict = Counter.as_dict


class _HistogramState:
    __slots__ = ("bucket_counts", "count", "sum")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * num_buckets
        self.count = 0
        self.sum = 0.0


@guarded_by("_lock", "_states")
class Histogram(_Instrument):
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help, label_names)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("need at least one bucket bound")
        if bounds[-1] != math.inf:
            bounds.append(math.inf)
        self.buckets = tuple(bounds)
        self._states: Dict[LabelValues, _HistogramState] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = self._states[key] = _HistogramState(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state.bucket_counts[i] += 1
                    break
            state.count += 1
            state.sum += value

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            return 0 if state is None else state.count

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            state = self._states.get(key)
            return 0.0 if state is None else state.sum

    def samples(self) -> List[Tuple[str, float]]:
        out: List[Tuple[str, float]] = []
        with self._lock:
            for key, state in sorted(self._states.items()):
                cumulative = 0
                for bound, in_bucket in zip(self.buckets, state.bucket_counts):
                    cumulative += in_bucket
                    names = self.label_names + ("le",)
                    values = key + (_format_value(bound),)
                    out.append((
                        f"{self.name}_bucket" + _format_labels(names, values),
                        float(cumulative),
                    ))
                suffix = _format_labels(self.label_names, key)
                out.append((f"{self.name}_sum{suffix}", state.sum))
                out.append((f"{self.name}_count{suffix}", float(state.count)))
        return out

    def as_dict(self) -> Dict:
        with self._lock:
            return {
                "labels": list(self.label_names),
                "buckets": [_format_value(b) for b in self.buckets],
                "values": [
                    {
                        "labels": list(key),
                        "count": state.count,
                        "sum": state.sum,
                        "bucket_counts": list(state.bucket_counts),
                    }
                    for key, state in sorted(self._states.items())
                ],
            }


@guarded_by("_lock", "_families")
class MetricsRegistry:
    """One namespace of instruments shared by a whole cluster.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the family, later calls return the same object (and
    reject re-registration under a different type or label set, which
    would silently fork the accounting).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, _Instrument] = {}

    # -- registration -------------------------------------------------------
    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                self._check_compatible(existing, Histogram, name, label_names)
                return existing  # type: ignore[return-value]
            instrument = Histogram(name, help, label_names, buckets)
            self._families[name] = instrument
            return instrument

    def _register(self, cls, name: str, help: str,
                  label_names: Sequence[str]):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                self._check_compatible(existing, cls, name, label_names)
                return existing
            instrument = cls(name, help, label_names)
            self._families[name] = instrument
            return instrument

    @staticmethod
    def _check_compatible(existing: _Instrument, cls, name: str,
                          label_names: Sequence[str]) -> None:
        if not isinstance(existing, cls):
            raise ValueError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        if existing.label_names != tuple(label_names):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{existing.label_names}, not {tuple(label_names)}"
            )

    # -- reads --------------------------------------------------------------
    def get(self, name: str) -> _Instrument:
        with self._lock:
            try:
                return self._families[name]
            except KeyError:
                raise KeyError(f"metric {name!r} not registered") from None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    # -- export -------------------------------------------------------------
    def export_prometheus(self) -> str:
        """The Prometheus text exposition format."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for sample_name, value in family.samples():
                lines.append(f"{sample_name} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def export_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_dict(self) -> Dict:
        with self._lock:
            families = sorted(self._families.items())
        return {
            name: {
                "type": family.kind,
                "help": family.help,
                **family.as_dict(),
            }
            for name, family in families
        }


def iter_samples(registry: MetricsRegistry) -> Iterable[Tuple[str, float]]:
    """Every (sample_name, value) pair across the registry."""
    for name in registry.names():
        yield from registry.get(name).samples()
