"""Span-based tracer exporting Chrome ``trace_event`` JSON.

Spans are nested timed regions (``tracer.span("cluster.finetune")``)
recorded on two clocks at once: the wall clock (``time.perf_counter``)
and, when a ``tick_source`` is wired (the fault injector's logical
clock), the logical tick the span started and ended on.  The export is
the Chrome/Perfetto ``trace_event`` format — load the JSON at
``chrome://tracing`` to see FT-DMP's Store and Tuner stages overlap.

One tracer per cluster; recording is cheap (a dataclass append under a
lock) and bounded by ``max_spans`` so long-lived clusters cannot leak.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..lint.guards import guarded_by

__all__ = ["Span", "Tracer", "wall_clock"]


def wall_clock() -> float:
    """The one sanctioned wall-clock read in the simulation stack.

    ND001 bans direct ``time.time``/``perf_counter`` calls outside this
    module: simulation logic must be deterministic (use the injector's
    logical tick), while *observability* — span timing, stage busy-time
    metrics — legitimately measures real elapsed time through this seam.
    Benchmarks keep their wall-seconds schemas; tests can monkeypatch a
    single function instead of chasing ``time`` imports.
    """
    return time.perf_counter()


@dataclass
class Span:
    """One finished timed region."""

    name: str
    category: str
    start_s: float
    duration_s: float
    depth: int
    thread_id: int
    tick_start: Optional[int] = None
    tick_end: Optional[int] = None
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


@guarded_by("_lock", "spans", "dropped_spans")
class Tracer:
    """Collects nested spans; thread-safe, per-thread nesting depth."""

    def __init__(self, tick_source: Optional[Callable[[], int]] = None,
                 max_spans: int = 100_000,
                 clock: Callable[[], float] = time.perf_counter):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.tick_source = tick_source
        self.max_spans = max_spans
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: List[Span] = []
        #: spans discarded because the buffer was full
        self.dropped_spans = 0

    # -- recording ----------------------------------------------------------
    @contextmanager
    def span(self, name: str, category: str = "flow",
             **args: Any) -> Iterator[Span]:
        """Time a region; yields the (not yet finalised) Span object."""
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        record = Span(
            name=name,
            category=category,
            start_s=self._clock() - self._epoch,
            duration_s=0.0,
            depth=depth,
            thread_id=threading.get_ident(),
            tick_start=self._tick(),
            args=dict(args),
        )
        try:
            yield record
        finally:
            record.duration_s = (self._clock() - self._epoch) - record.start_s
            record.tick_end = self._tick()
            self._local.depth = depth
            with self._lock:
                if len(self.spans) < self.max_spans:
                    self.spans.append(record)
                else:
                    self.dropped_spans += 1

    def _tick(self) -> Optional[int]:
        if self.tick_source is None:
            return None
        return int(self.tick_source())

    # -- queries ------------------------------------------------------------
    def find(self, name: str) -> List[Span]:
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def total_seconds(self, name: str) -> float:
        return sum(s.duration_s for s in self.find(name))

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()
            self.dropped_spans = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self.spans)

    # -- export -------------------------------------------------------------
    def export_chrome_trace(self, indent: Optional[int] = None,
                            process_name: str = "ndpipe") -> str:
        """Chrome ``trace_event`` JSON (object format, complete events)."""
        events: List[Dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }]
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            args = dict(span.args)
            if span.tick_start is not None:
                args["tick_start"] = span.tick_start
                args["tick_end"] = span.tick_end
            events.append({
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.duration_s * 1e6, 3),
                "pid": 1,
                "tid": span.thread_id % 2 ** 31,
                "args": args,
            })
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=indent,
        )

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name aggregate: count and total/mean seconds."""
        with self._lock:
            spans = list(self.spans)
        out: Dict[str, Dict[str, float]] = {}
        for span in spans:
            agg = out.setdefault(span.name, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += span.duration_s
        for agg in out.values():
            agg["mean_s"] = agg["total_s"] / agg["count"]
        return out
