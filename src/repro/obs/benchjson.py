"""Structured benchmark results — the machine-readable bench trajectory.

Every ``bench_fig*`` script historically wrote a human-readable text
table; nothing downstream could diff a number across PRs.  This module
gives the bench harness one JSON schema:

.. code-block:: json

    {
      "bench": "fig12_npe_ablation",
      "schema_version": 1,
      "config": {"model": "ResNet50", "scale": "fast"},
      "results": [
        {"metric": "npe_throughput_ips", "value": 2129.0,
         "unit": "images/s", "labels": {"level": "+Batch"}}
      ]
    }

Values are plain floats/ints, labels are flat string maps, and nothing
time- or host-dependent is written, so two runs of the same code produce
byte-identical files and the results directory diffs cleanly across PRs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["BenchResult", "bench_payload", "write_bench_json"]

SCHEMA_VERSION = 1

Number = Union[int, float]


@dataclass(frozen=True)
class BenchResult:
    """One measured number: name, value, unit, and identifying labels."""

    metric: str
    value: Number
    unit: str
    labels: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        out: Dict = {
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
        }
        if self.labels:
            out["labels"] = {k: str(v) for k, v in sorted(self.labels.items())}
        return out


def bench_payload(bench: str, results: Sequence[BenchResult],
                  config: Optional[Dict] = None) -> Dict:
    """Assemble the canonical payload dict for one benchmark."""
    if not bench:
        raise ValueError("bench name must be non-empty")
    for result in results:
        if not isinstance(result, BenchResult):
            raise TypeError(f"expected BenchResult, got {type(result)!r}")
    return {
        "bench": bench,
        "schema_version": SCHEMA_VERSION,
        "config": {k: config[k] for k in sorted(config)} if config else {},
        "results": [r.to_dict() for r in results],
    }


def write_bench_json(directory: Union[str, Path], bench: str,
                     results: Sequence[BenchResult],
                     config: Optional[Dict] = None) -> Path:
    """Write ``<directory>/<bench>.json``; returns the written path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{bench}.json"
    payload = bench_payload(bench, results, config)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_json(path: Union[str, Path]) -> List[BenchResult]:
    """Read a results file back into :class:`BenchResult` objects."""
    payload = json.loads(Path(path).read_text())
    return [
        BenchResult(
            metric=entry["metric"],
            value=entry["value"],
            unit=entry["unit"],
            labels=dict(entry.get("labels", {})),
        )
        for entry in payload["results"]
    ]
