"""Structured benchmark results — the machine-readable bench trajectory.

Every ``bench_fig*`` script historically wrote a human-readable text
table; nothing downstream could diff a number across PRs.  This module
gives the bench harness one JSON schema:

.. code-block:: json

    {
      "bench": "fig12_npe_ablation",
      "schema_version": 2,
      "config": {"model": "ResNet50", "scale": "fast"},
      "results": [
        {"metric": "npe_throughput_ips", "value": 2129.0,
         "unit": "images/s", "labels": {"level": "+Batch"},
         "direction": "higher_is_better"}
      ]
    }

Values are plain floats/ints and labels are flat string maps.  The
figure benches write nothing time- or host-dependent, so two runs of
the same code produce byte-identical files; the perf-trajectory
harness (:mod:`repro.bench`) additionally records measured wall
seconds, which vary run to run and are gated with a tolerance instead
of diffed exactly.

Schema v2 adds the optional per-result ``direction`` field —
``higher_is_better`` / ``lower_is_better`` / ``exact`` — which tells
the perf regression gate how to compare a metric against its committed
baseline.  Results without a direction are informational: recorded and
diffed for presence, never failed on value.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

__all__ = ["BenchResult", "bench_payload", "write_bench_json",
           "load_bench_json", "load_bench_payload", "DIRECTIONS"]

SCHEMA_VERSION = 2

#: how the perf gate compares a metric against its baseline
DIRECTIONS = ("higher_is_better", "lower_is_better", "exact")

Number = Union[int, float]


@dataclass(frozen=True)
class BenchResult:
    """One measured number: name, value, unit, and identifying labels.

    ``direction`` (optional) declares how the regression gate should
    compare this metric across runs; ``None`` means informational.
    """

    metric: str
    value: Number
    unit: str
    labels: Dict[str, str] = field(default_factory=dict)
    direction: Optional[str] = None

    def __post_init__(self):
        if self.direction is not None and self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS} or None, "
                f"got {self.direction!r}"
            )

    def to_dict(self) -> Dict:
        out: Dict = {
            "metric": self.metric,
            "value": self.value,
            "unit": self.unit,
        }
        if self.labels:
            out["labels"] = {k: str(v) for k, v in sorted(self.labels.items())}
        if self.direction is not None:
            out["direction"] = self.direction
        return out


def bench_payload(bench: str, results: Sequence[BenchResult],
                  config: Optional[Dict] = None) -> Dict:
    """Assemble the canonical payload dict for one benchmark."""
    if not bench:
        raise ValueError("bench name must be non-empty")
    for result in results:
        if not isinstance(result, BenchResult):
            raise TypeError(f"expected BenchResult, got {type(result)!r}")
    return {
        "bench": bench,
        "schema_version": SCHEMA_VERSION,
        "config": {k: config[k] for k in sorted(config)} if config else {},
        "results": [r.to_dict() for r in results],
    }


def write_bench_json(directory: Union[str, Path], bench: str,
                     results: Sequence[BenchResult],
                     config: Optional[Dict] = None) -> Path:
    """Write ``<directory>/<bench>.json``; returns the written path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{bench}.json"
    payload = bench_payload(bench, results, config)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_json(path: Union[str, Path]) -> List[BenchResult]:
    """Read a results file back into :class:`BenchResult` objects."""
    payload = json.loads(Path(path).read_text())
    return [
        BenchResult(
            metric=entry["metric"],
            value=entry["value"],
            unit=entry["unit"],
            labels=dict(entry.get("labels", {})),
            direction=entry.get("direction"),
        )
        for entry in payload["results"]
    ]


def load_bench_payload(path: Union[str, Path]) -> Dict:
    """Read a results file back as the raw payload dict (config included)."""
    return json.loads(Path(path).read_text())
