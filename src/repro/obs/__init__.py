"""``repro.obs`` — cluster-wide observability: metrics, tracing, bench JSON.

* :class:`MetricsRegistry` — labelled counters/gauges/histograms with
  Prometheus-text and JSON export; one registry is threaded through the
  whole :class:`~repro.core.cluster.NDPipeCluster`.
* :class:`Tracer` — nested timed spans on the wall clock and the fault
  injector's logical-tick clock, exported as Chrome ``trace_event`` JSON.
* :mod:`~repro.obs.benchjson` — the structured results schema the
  ``bench_fig*`` scripts write so the perf trajectory diffs across PRs.
"""

from .benchjson import BenchResult, bench_payload, load_bench_json, write_bench_json
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    iter_samples,
)
from .tracing import Span, Tracer

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_BUCKETS",
    "iter_samples",
    "Tracer", "Span",
    "BenchResult", "bench_payload", "write_bench_json", "load_bench_json",
]
