"""Tiny runnable ResNeXt101 analogue (grouped bottlenecks, stages Conv1..FC)."""

from __future__ import annotations

import numpy as np

from ..nn.layers import GlobalAvgPool2d, Linear, Sequential
from .blocks import Bottleneck, conv_bn_relu
from .split import SplitModel


def tiny_resnext101(num_classes: int = 10, image_size: int = 16, width: int = 16,
                    groups: int = 4, seed: int = 0) -> SplitModel:
    """ResNeXt-style network: bottlenecks with grouped (cardinality) 3x3s.

    Two blocks per stage (vs one in the tiny ResNet) echoes ResNeXt101's
    greater depth, so it really is the slowest tiny model — matching its
    role in the paper's scaling plots.
    """
    rng = np.random.default_rng(seed)
    w = width
    stages = [
        ("Conv1", conv_bn_relu(3, w, 3, rng=rng)),
        ("Conv2", Sequential(
            Bottleneck(w, w, 2 * w, groups=groups, rng=rng),
            Bottleneck(2 * w, w, 2 * w, groups=groups, rng=rng),
        )),
        ("Conv3", Sequential(
            Bottleneck(2 * w, 2 * w, 4 * w, stride=2, groups=groups, rng=rng),
            Bottleneck(4 * w, 2 * w, 4 * w, groups=groups, rng=rng),
        )),
        ("Conv4", Sequential(
            Bottleneck(4 * w, 4 * w, 8 * w, stride=2, groups=groups, rng=rng),
            Bottleneck(8 * w, 4 * w, 8 * w, groups=groups, rng=rng),
        )),
        ("Conv5", Sequential(
            Bottleneck(8 * w, 8 * w, 16 * w, stride=2, groups=groups, rng=rng),
            GlobalAvgPool2d(),
        )),
        ("FC", Linear(16 * w, num_classes, rng=rng)),
    ]
    return SplitModel("ResNeXt101-tiny", stages, input_shape=(3, image_size, image_size))
