"""Stage-level model graphs: the unit APO partitions over.

The paper's APO tool (Algorithm 1) reasons about a DNN as a sequence of
*partitionable* stages — it never cuts inside a residual block or skip
connection (§5.3).  A :class:`ModelGraph` captures exactly the quantities
`FindBestPoint` needs per stage: forward FLOPs, parameter count, and the
activation volume a cut after that stage would ship over the network.

Graphs exist at two scales:

* full-scale graphs (:mod:`repro.models.catalog`) with the published
  architectures' FLOP/byte numbers, used by APO and the simulator;
* tiny runnable graphs derived from the numpy models, used to cross-check
  that analytic partitioning agrees with what the real split executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

#: bytes per element when features are shipped PipeStore -> Tuner (fp32;
#: calibrated against the 9.16 GB +Conv5 traffic callout of Fig. 9)
FEATURE_DTYPE_BYTES = 4
#: bytes per element of a preprocessed input binary (fp32)
INPUT_DTYPE_BYTES = 4
#: bytes per model weight (fp32)
WEIGHT_DTYPE_BYTES = 4


@dataclass(frozen=True)
class StageSpec:
    """One partitionable segment of a model.

    ``flops_fwd`` is per-image forward FLOPs; the backward pass of a
    trainable stage is modelled as ``2x`` forward (standard estimate).
    ``out_elems`` is the number of activation elements per image leaving the
    stage.  ``trainable`` marks the classifier / task module that
    fine-tuning updates.
    """

    name: str
    flops_fwd: float
    params: int
    out_elems: int
    trainable: bool = False

    @property
    def flops_train(self) -> float:
        """FLOPs per image when this stage participates in training."""
        if self.trainable:
            return 3.0 * self.flops_fwd
        return self.flops_fwd

    @property
    def out_bytes(self) -> int:
        return self.out_elems * FEATURE_DTYPE_BYTES

    @property
    def weight_bytes(self) -> int:
        return self.params * WEIGHT_DTYPE_BYTES


@dataclass(frozen=True)
class PartitionPoint:
    """A cut after ``num_stages`` stages (0 = nothing offloaded)."""

    index: int
    label: str
    front_flops: float
    back_flops_train: float
    feature_bytes: int
    sync_bytes: int

    @property
    def offloads_trainable(self) -> bool:
        return self.sync_bytes > 0


class ModelGraph:
    """A model as an ordered list of partitionable stages."""

    def __init__(self, name: str, stages: Sequence[StageSpec],
                 input_elems: int, raw_image_bytes: int):
        if not stages:
            raise ValueError("a model graph needs at least one stage")
        trainable = [s for s in stages if s.trainable]
        if not trainable:
            raise ValueError(f"{name}: no trainable (classifier) stage")
        if not stages[-1].trainable:
            raise ValueError(f"{name}: the trainable stage must be last (fine-tuning)")
        self.name = name
        self.stages: Tuple[StageSpec, ...] = tuple(stages)
        self.input_elems = input_elems
        self.raw_image_bytes = raw_image_bytes

    # -- aggregates -----------------------------------------------------
    @property
    def total_flops(self) -> float:
        return sum(s.flops_fwd for s in self.stages)

    @property
    def total_params(self) -> int:
        return sum(s.params for s in self.stages)

    @property
    def input_bytes(self) -> int:
        """Bytes of one preprocessed input binary (what 'None' ships)."""
        return self.input_elems * INPUT_DTYPE_BYTES

    @property
    def model_bytes(self) -> int:
        return self.total_params * WEIGHT_DTYPE_BYTES

    @property
    def classifier(self) -> StageSpec:
        return self.stages[-1]

    @property
    def classifier_params(self) -> int:
        return sum(s.params for s in self.stages if s.trainable)

    def stage_names(self) -> List[str]:
        return [s.name for s in self.stages]

    # -- partitioning ----------------------------------------------------
    def num_partition_points(self) -> int:
        """Cuts 0..len(stages): 0 = None (ship inputs), len = +classifier."""
        return len(self.stages) + 1

    def partition_point(self, index: int) -> PartitionPoint:
        """Describe the cut after ``index`` stages.

        ``feature_bytes`` is what each image costs on the wire:
        the preprocessed input for index 0, the activation at the cut
        otherwise, and only label-sized output once everything (including
        the classifier) is offloaded.  ``sync_bytes`` is the per-epoch
        weight-synchronisation cost that appears once trainable layers run
        on PipeStores (the +FC surge of Fig. 9).
        """
        if not 0 <= index <= len(self.stages):
            raise ValueError(f"partition index {index} out of range")
        if index == 0:
            label = "None"
            feature_bytes = self.input_bytes
        else:
            stage = self.stages[index - 1]
            label = f"+{stage.name}"
            feature_bytes = stage.out_bytes if index < len(self.stages) else 8

        front = self.stages[:index]
        back = self.stages[index:]
        sync_bytes = sum(s.weight_bytes for s in front if s.trainable)
        return PartitionPoint(
            index=index,
            label=label,
            front_flops=sum(s.flops_fwd for s in front),
            back_flops_train=sum(s.flops_train for s in back),
            feature_bytes=feature_bytes,
            sync_bytes=sync_bytes,
        )

    def partition_points(self) -> List[PartitionPoint]:
        return [self.partition_point(i) for i in range(self.num_partition_points())]

    def __repr__(self) -> str:
        return (
            f"ModelGraph({self.name}, {len(self.stages)} stages, "
            f"{self.total_flops / 1e9:.2f} GFLOPs, "
            f"{self.total_params / 1e6:.1f}M params)"
        )
