"""Full-scale stage graphs of the paper's five models.

Per-stage FLOPs, parameter counts, and activation sizes follow the published
architectures (He et al. '16; Szegedy et al. '16; Ma et al. '18; Xie et
al. '17; Dosovitskiy et al. '21) at their standard input resolutions.
Stage boundaries are the paper's partitionable points: between the named
convolution groups of the CNNs and between encoder-block groups of ViT —
never inside a residual block (§5.3).

FLOPs are multiply-accumulate counts x2.  Numbers are rounded to three
significant digits; APO only needs relative magnitudes, and the simulator
calibrates absolute throughput against the paper's measured IPS
(:mod:`repro.sim.specs`).
"""

from __future__ import annotations

from typing import Dict, List

from .graph import ModelGraph, StageSpec

#: average raw photo size in the paper's workload (2.7 MB JPEG, §3.4)
RAW_IMAGE_BYTES = 2_700_000

GF = 1e9
MF = 1e6


def resnet50() -> ModelGraph:
    """ResNet50 at 224x224: 4.2 GFLOPs forward, 25.6M params."""
    stages = [
        StageSpec("Conv1", 0.24 * GF, 9_408, 64 * 56 * 56),
        StageSpec("Conv2", 0.68 * GF, 215_808, 256 * 56 * 56),
        StageSpec("Conv3", 1.04 * GF, 1_219_584, 512 * 28 * 28),
        StageSpec("Conv4", 1.46 * GF, 7_098_368, 1024 * 14 * 14),
        StageSpec("Conv5", 0.81 * GF, 14_964_736, 2048),
        StageSpec("FC", 4.1 * MF, 2_049_000, 1000, trainable=True),
    ]
    return ModelGraph("ResNet50", stages, input_elems=3 * 224 * 224,
                      raw_image_bytes=RAW_IMAGE_BYTES)


def inception_v3() -> ModelGraph:
    """InceptionV3 at 299x299: 5.7 GFLOPs forward, 23.9M params."""
    stages = [
        StageSpec("Stem", 0.86 * GF, 1_240_000, 288 * 35 * 35),
        StageSpec("MixedA", 1.02 * GF, 1_160_000, 288 * 35 * 35),
        StageSpec("MixedB", 2.58 * GF, 10_900_000, 768 * 17 * 17),
        StageSpec("MixedC", 1.24 * GF, 8_550_000, 2048),
        StageSpec("FC", 4.1 * MF, 2_049_000, 1000, trainable=True),
    ]
    return ModelGraph("InceptionV3", stages, input_elems=3 * 299 * 299,
                      raw_image_bytes=RAW_IMAGE_BYTES)


def shufflenet_v2() -> ModelGraph:
    """ShuffleNetV2 1.0x at 224x224: 0.30 GFLOPs forward, 2.3M params."""
    stages = [
        StageSpec("Stem", 0.024 * GF, 1_000, 24 * 56 * 56),
        StageSpec("Stage2", 0.080 * GF, 27_000, 116 * 28 * 28),
        StageSpec("Stage3", 0.120 * GF, 140_000, 232 * 14 * 14),
        StageSpec("Stage4", 0.056 * GF, 556_000, 464 * 7 * 7),
        StageSpec("Conv5", 0.020 * GF, 478_000, 1024),
        StageSpec("FC", 2.1 * MF, 1_025_000, 1000, trainable=True),
    ]
    return ModelGraph("ShuffleNetV2", stages, input_elems=3 * 224 * 224,
                      raw_image_bytes=RAW_IMAGE_BYTES)


def resnext101() -> ModelGraph:
    """ResNeXt101 32x8d at 224x224: 16.5 GFLOPs forward, 88.8M params."""
    stages = [
        StageSpec("Conv1", 0.24 * GF, 9_408, 64 * 56 * 56),
        StageSpec("Conv2", 2.70 * GF, 630_000, 256 * 56 * 56),
        StageSpec("Conv3", 4.20 * GF, 4_260_000, 512 * 28 * 28),
        StageSpec("Conv4", 5.90 * GF, 52_900_000, 1024 * 14 * 14),
        StageSpec("Conv5", 3.40 * GF, 28_900_000, 2048),
        StageSpec("FC", 4.1 * MF, 2_049_000, 1000, trainable=True),
    ]
    return ModelGraph("ResNeXt101", stages, input_elems=3 * 224 * 224,
                      raw_image_bytes=RAW_IMAGE_BYTES)


def vit_b16() -> ModelGraph:
    """ViT-B/16 at 224x224: 17.6 GFLOPs forward, 86.6M params.

    12 encoder blocks grouped into four partitionable groups of three;
    the task module (head) is the trainable stage.
    """
    block_group_flops = 4.33 * GF
    block_group_params = 21_300_000
    token_elems = 197 * 768
    stages = [
        StageSpec("PatchEmbed", 0.24 * GF, 742_000, token_elems),
        StageSpec("Blocks1_3", block_group_flops, block_group_params, token_elems),
        StageSpec("Blocks4_6", block_group_flops, block_group_params, token_elems),
        StageSpec("Blocks7_9", block_group_flops, block_group_params, token_elems),
        StageSpec("Blocks10_12", block_group_flops, block_group_params, 768),
        StageSpec("Head", 1.5 * MF, 769_000, 1000, trainable=True),
    ]
    return ModelGraph("ViT", stages, input_elems=3 * 224 * 224,
                      raw_image_bytes=RAW_IMAGE_BYTES)


_FACTORIES = {
    "ResNet50": resnet50,
    "InceptionV3": inception_v3,
    "ShuffleNetV2": shufflenet_v2,
    "ResNeXt101": resnext101,
    "ViT": vit_b16,
}

#: the four models the paper's scaling figures plot (§6.1)
FIGURE_MODELS: List[str] = ["ResNet50", "InceptionV3", "ResNeXt101", "ViT"]
#: all five models (Table 2 adds ShuffleNetV2)
ALL_MODELS: List[str] = ["ShuffleNetV2", "ResNet50", "InceptionV3", "ResNeXt101", "ViT"]


def model_graph(name: str) -> ModelGraph:
    """Look up a full-scale stage graph by paper model name."""
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_FACTORIES)}"
        ) from None


def all_graphs() -> Dict[str, ModelGraph]:
    return {name: factory() for name, factory in _FACTORIES.items()}
