"""Model registry: paper model name -> (tiny runnable factory, full graph)."""

from __future__ import annotations

from typing import Callable, Dict

from . import catalog
from .catalog import ALL_MODELS, FIGURE_MODELS, all_graphs, model_graph
from .inception import tiny_inception_v3
from .resnet import tiny_resnet50
from .resnext import tiny_resnext101
from .shufflenet import tiny_shufflenet_v2
from .split import SplitModel
from .vit import tiny_vit

TINY_FACTORIES: Dict[str, Callable[..., SplitModel]] = {
    "ShuffleNetV2": tiny_shufflenet_v2,
    "ResNet50": tiny_resnet50,
    "InceptionV3": tiny_inception_v3,
    "ResNeXt101": tiny_resnext101,
    "ViT": tiny_vit,
}


def tiny_model(name: str, **kwargs) -> SplitModel:
    """Build the tiny runnable variant of a paper model by name."""
    try:
        factory = TINY_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(TINY_FACTORIES)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "TINY_FACTORIES", "tiny_model", "model_graph", "all_graphs",
    "ALL_MODELS", "FIGURE_MODELS", "catalog",
]
