"""Architecture building blocks shared by the tiny model zoo."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Identity,
    ReLU,
    Sequential,
)
from ..nn.module import Module
from ..nn.tensor import Tensor, concat


def conv_bn_relu(in_ch: int, out_ch: int, kernel: int, stride: int = 1,
                 padding: Optional[int] = None, groups: int = 1,
                 rng: Optional[np.random.Generator] = None) -> Sequential:
    if padding is None:
        padding = kernel // 2
    return Sequential(
        Conv2d(in_ch, out_ch, kernel, stride=stride, padding=padding,
               groups=groups, rng=rng),
        BatchNorm2d(out_ch),
        ReLU(),
    )


class Bottleneck(Module):
    """ResNet/ResNeXt bottleneck: 1x1 -> 3x3 (optionally grouped) -> 1x1."""

    def __init__(self, in_ch: int, mid_ch: int, out_ch: int, stride: int = 1,
                 groups: int = 1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.conv1 = conv_bn_relu(in_ch, mid_ch, 1, rng=rng)
        self.conv2 = conv_bn_relu(mid_ch, mid_ch, 3, stride=stride,
                                  groups=groups, rng=rng)
        self.conv3 = Sequential(
            Conv2d(mid_ch, out_ch, 1, rng=rng),
            BatchNorm2d(out_ch),
        )
        if stride != 1 or in_ch != out_ch:
            self.shortcut = Sequential(
                Conv2d(in_ch, out_ch, 1, stride=stride, rng=rng),
                BatchNorm2d(out_ch),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv3(self.conv2(self.conv1(x)))
        return (out + self.shortcut(x)).relu()


class InceptionModule(Module):
    """A compact Inception module: 1x1, 3x3, 5x5(as double-3x3), pool branches."""

    def __init__(self, in_ch: int, b1: int, b3: int, b5: int, bp: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.branch1 = conv_bn_relu(in_ch, b1, 1, rng=rng)
        self.branch3 = Sequential(
            conv_bn_relu(in_ch, b3, 1, rng=rng),
            conv_bn_relu(b3, b3, 3, rng=rng),
        )
        self.branch5 = Sequential(
            conv_bn_relu(in_ch, b5, 1, rng=rng),
            conv_bn_relu(b5, b5, 3, rng=rng),
            conv_bn_relu(b5, b5, 3, rng=rng),
        )
        self.branch_pool = Sequential(
            AvgPool2d(3, stride=1, padding=1),
            conv_bn_relu(in_ch, bp, 1, rng=rng),
        )
        self.out_channels = b1 + b3 + b5 + bp

    def forward(self, x: Tensor) -> Tensor:
        return concat(
            [self.branch1(x), self.branch3(x), self.branch5(x), self.branch_pool(x)],
            axis=1,
        )


def channel_shuffle(x: Tensor, groups: int) -> Tensor:
    """Interleave channel groups (the ShuffleNet shuffle operator)."""
    n, c, h, w = x.shape
    if c % groups:
        raise ValueError(f"channels {c} not divisible by groups {groups}")
    x = x.reshape(n, groups, c // groups, h, w)
    x = x.transpose(0, 2, 1, 3, 4)
    return x.reshape(n, c, h, w)


class ShuffleUnit(Module):
    """ShuffleNetV2 basic unit with channel split + shuffle (stride 1)."""

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if channels % 2:
            raise ValueError("ShuffleUnit needs an even channel count")
        half = channels // 2
        self.half = half
        self.branch = Sequential(
            conv_bn_relu(half, half, 1, rng=rng),
            # depthwise 3x3
            Conv2d(half, half, 3, padding=1, groups=half, rng=rng),
            BatchNorm2d(half),
            conv_bn_relu(half, half, 1, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        left = x[:, : self.half]
        right = x[:, self.half:]
        out = concat([left, self.branch(right)], axis=1)
        return channel_shuffle(out, 2)


class ShuffleDownUnit(Module):
    """ShuffleNetV2 spatial-down unit (stride 2, both branches convolved)."""

    def __init__(self, in_ch: int, out_ch: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        half = out_ch // 2
        self.branch_main = Sequential(
            conv_bn_relu(in_ch, half, 1, rng=rng),
            Conv2d(half, half, 3, stride=2, padding=1, groups=half, rng=rng),
            BatchNorm2d(half),
            conv_bn_relu(half, half, 1, rng=rng),
        )
        self.branch_proj = Sequential(
            Conv2d(in_ch, in_ch, 3, stride=2, padding=1, groups=in_ch, rng=rng),
            BatchNorm2d(in_ch),
            conv_bn_relu(in_ch, half, 1, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        out = concat([self.branch_proj(x), self.branch_main(x)], axis=1)
        return channel_shuffle(out, 2)
