"""Tiny runnable InceptionV3 analogue (stages Stem, MixedA/B/C, FC)."""

from __future__ import annotations

import numpy as np

from ..nn.layers import GlobalAvgPool2d, Linear, MaxPool2d, Sequential
from .blocks import InceptionModule, conv_bn_relu
from .split import SplitModel


def tiny_inception_v3(num_classes: int = 10, image_size: int = 16, width: int = 16,
                      seed: int = 0) -> SplitModel:
    """Multi-branch inception network shrunk to laptop scale."""
    rng = np.random.default_rng(seed)
    w = width
    mixed_a = InceptionModule(w, w // 2, w // 2, w // 2, w // 2, rng=rng)
    mixed_b = InceptionModule(mixed_a.out_channels, w, w, w, w, rng=rng)
    mixed_c = InceptionModule(mixed_b.out_channels, w, w, w, w, rng=rng)
    stages = [
        ("Stem", conv_bn_relu(3, w, 3, rng=rng)),
        ("MixedA", mixed_a),
        ("MixedB", Sequential(MaxPool2d(2), mixed_b)),
        ("MixedC", Sequential(MaxPool2d(2), mixed_c, GlobalAvgPool2d())),
        ("FC", Linear(mixed_c.out_channels, num_classes, rng=rng)),
    ]
    return SplitModel("InceptionV3-tiny", stages, input_shape=(3, image_size, image_size))
