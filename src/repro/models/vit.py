"""Tiny runnable ViT analogue (stages PatchEmbed, block groups, Head)."""

from __future__ import annotations

import numpy as np

from ..nn.attention import PatchEmbedding, TransformerBlock
from ..nn.layers import LayerNorm, Linear, Sequential
from ..nn.module import Module
from ..nn.tensor import Tensor
from .split import SplitModel


class TakeClassToken(Module):
    """Extract the CLS token: (N, T, D) -> (N, D)."""

    def forward(self, x: Tensor) -> Tensor:
        return x[:, 0]


def tiny_vit(num_classes: int = 10, image_size: int = 16, patch_size: int = 4,
             dim: int = 32, num_heads: int = 4, seed: int = 0) -> SplitModel:
    """Four-block pre-norm ViT shrunk to laptop scale.

    Block-group stage names mirror :func:`repro.models.catalog.vit_b16`;
    each tiny group holds one encoder block where ViT-B/16 holds three.
    """
    rng = np.random.default_rng(seed)
    stages = [
        ("PatchEmbed", PatchEmbedding(image_size, patch_size, 3, dim, rng=rng)),
        ("Blocks1_3", TransformerBlock(dim, num_heads, rng=rng)),
        ("Blocks4_6", TransformerBlock(dim, num_heads, rng=rng)),
        ("Blocks7_9", TransformerBlock(dim, num_heads, rng=rng)),
        ("Blocks10_12", Sequential(
            TransformerBlock(dim, num_heads, rng=rng),
            LayerNorm(dim),
            TakeClassToken(),
        )),
        ("Head", Linear(dim, num_classes, rng=rng)),
    ]
    return SplitModel("ViT-tiny", stages, input_shape=(3, image_size, image_size))
