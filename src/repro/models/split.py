"""Runnable split models: stage-named networks the FT-DMP engine can cut.

A :class:`SplitModel` is a sequence of named stage modules whose last stage
is the classifier.  PipeStores run ``forward_until(x, p)`` (the weight-freeze
front); the Tuner runs ``forward_from(features, p)`` (the rest, including the
trainable classifier).  ``assert_split_consistent`` verifies the invariant
that a split forward equals the unsplit forward bit-for-bit.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor
from .graph import ModelGraph, StageSpec


class SplitModel(Module):
    """A model expressed as ordered, named, partitionable stages."""

    def __init__(self, name: str, stages: Sequence[Tuple[str, Module]],
                 input_shape: Tuple[int, ...]):
        super().__init__()
        if not stages:
            raise ValueError("SplitModel needs at least one stage")
        self.name = name
        self.input_shape = tuple(input_shape)
        self.stage_names: List[str] = [n for n, _ in stages]
        self._stage_modules: List[Module] = [m for _, m in stages]
        for stage_name, module in stages:
            setattr(self, f"stage_{stage_name}", module)

    # -- structure -------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self._stage_modules)

    @property
    def classifier(self) -> Module:
        return self._stage_modules[-1]

    def stage(self, index: int) -> Module:
        return self._stage_modules[index]

    def stage_index(self, name: str) -> int:
        return self.stage_names.index(name)

    # -- execution ---------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:
        for module in self._stage_modules:
            x = module(x)
        return x

    def forward_until(self, x: Tensor, split: int) -> Tensor:
        """Run the first ``split`` stages (the PipeStore side)."""
        self._check_split(split)
        for module in self._stage_modules[:split]:
            x = module(x)
        return x

    def forward_from(self, features: Tensor, split: int) -> Tensor:
        """Run stages ``split:`` (the Tuner side)."""
        self._check_split(split)
        x = features
        for module in self._stage_modules[split:]:
            x = module(x)
        return x

    def _check_split(self, split: int) -> None:
        if not 0 <= split <= self.num_stages:
            raise ValueError(
                f"split {split} out of range for {self.num_stages} stages"
            )

    # -- fine-tuning setup -------------------------------------------------
    def freeze_features(self) -> "SplitModel":
        """Freeze everything except the classifier (fine-tuning mode B)."""
        for module in self._stage_modules[:-1]:
            module.freeze()
        self.classifier.unfreeze()
        return self

    def feature_dim_after(self, split: int, batch: int = 2) -> Tuple[int, ...]:
        """Shape (excluding batch) of activations leaving stage ``split``."""
        probe = Tensor(np.zeros((batch,) + self.input_shape))
        out = self.forward_until(probe, split)
        return out.shape[1:]

    # -- analytic graph ------------------------------------------------------
    def to_graph(self, raw_image_bytes: int = 8192) -> ModelGraph:
        """Derive a :class:`ModelGraph` by probing the model.

        Activation sizes come from a shape probe; per-stage FLOPs are
        *measured* by tracing a forward pass through the FLOP counter
        (:mod:`repro.models.flops`), so APO arithmetic on tiny models uses
        the same 2x-MAC convention as the full-scale catalog.
        """
        from .flops import count_stage_flops

        stage_flops = count_stage_flops(self)
        probe = Tensor(np.zeros((1,) + self.input_shape))
        specs = []
        x = probe
        for i, (name, module) in enumerate(zip(self.stage_names, self._stage_modules)):
            x = module(x)
            out_elems = int(np.prod(x.shape[1:]))
            specs.append(StageSpec(
                name=name,
                flops_fwd=max(stage_flops[name], 1.0),
                params=module.num_parameters(),
                out_elems=out_elems,
                trainable=(i == self.num_stages - 1),
            ))
        input_elems = int(np.prod(self.input_shape))
        return ModelGraph(self.name, specs, input_elems, raw_image_bytes)


def assert_split_consistent(model: SplitModel, x: Tensor, split: int,
                            atol: float = 1e-10) -> None:
    """Raise if splitting at ``split`` changes the model output."""
    whole = model(x).data
    parts = model.forward_from(model.forward_until(x, split), split).data
    if not np.allclose(whole, parts, atol=atol):
        raise AssertionError(
            f"{model.name}: split at {split} changed outputs "
            f"(max abs diff {np.abs(whole - parts).max():.3e})"
        )
