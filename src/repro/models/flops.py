"""Exact forward-FLOP counting for runnable models.

APO reasons over per-stage FLOPs.  For the full-scale models those come
from the published architecture tables (:mod:`repro.models.catalog`); for
the tiny runnable models this module measures them directly by tracing a
probe forward pass: every ``conv2d`` and matrix multiplication executed is
counted as ``2 x`` its multiply-accumulates (the standard convention the
catalog uses too).

Usage::

    with FlopCounter() as counter:
        model(Tensor(probe))
    counter.total_flops

or :func:`count_stage_flops` for the per-stage breakdown a
:class:`~repro.models.split.SplitModel` needs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from .split import SplitModel


class FlopCounter:
    """Context manager that counts FLOPs of conv2d and matmul calls."""

    _active: List["FlopCounter"] = []
    _installed = False
    _orig_conv2d = None
    _orig_matmul = None

    def __init__(self):
        self.conv_flops = 0.0
        self.matmul_flops = 0.0

    @property
    def total_flops(self) -> float:
        return self.conv_flops + self.matmul_flops

    # -- context management ------------------------------------------------
    def __enter__(self) -> "FlopCounter":
        cls = type(self)
        if not cls._installed:
            cls._install()
        cls._active.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        type(self)._active.remove(self)

    # -- interception ------------------------------------------------------
    @classmethod
    def _install(cls) -> None:
        cls._orig_conv2d = F.conv2d
        cls._orig_matmul = Tensor.__matmul__

        def counting_conv2d(x, weight, stride=1, padding=0, groups=1):
            if cls._active:
                n, c, h, w = x.shape
                f, c_per_group, kh, kw = weight.shape
                oh = F.conv_output_size(h, kh, stride, padding)
                ow = F.conv_output_size(w, kw, stride, padding)
                flops = 2.0 * n * f * oh * ow * c_per_group * kh * kw
                for counter in cls._active:
                    counter.conv_flops += flops
            return cls._orig_conv2d(x, weight, stride, padding, groups)

        def counting_matmul(self, other):
            if cls._active:
                other_t = other if isinstance(other, Tensor) else Tensor(other)
                out_shape = np.broadcast_shapes(
                    self.shape[:-2] if self.ndim >= 2 else (),
                    other_t.shape[:-2] if other_t.ndim >= 2 else (),
                )
                rows = self.shape[-2] if self.ndim >= 2 else 1
                inner = self.shape[-1]
                cols = other_t.shape[-1] if other_t.ndim >= 2 else 1
                batch = int(np.prod(out_shape)) if out_shape else 1
                flops = 2.0 * batch * rows * inner * cols
                for counter in cls._active:
                    counter.matmul_flops += flops
            return cls._orig_matmul(self, other)

        F.conv2d = counting_conv2d
        Tensor.__matmul__ = counting_matmul
        # layers import conv2d via `from . import functional as F`, so the
        # module-attribute patch reaches them; Sequential Linear layers go
        # through Tensor.__matmul__
        cls._installed = True


def count_forward_flops(fn, *args) -> Tuple[float, object]:
    """Run ``fn(*args)`` under a counter; returns (flops, result)."""
    with FlopCounter() as counter:
        result = fn(*args)
    return counter.total_flops, result


def count_stage_flops(model: SplitModel, batch: int = 1,
                      ) -> Dict[str, float]:
    """Per-image forward FLOPs of every stage of a runnable model."""
    if batch < 1:
        raise ValueError("batch must be >= 1")
    was_training = model.training
    model.eval()
    probe = Tensor(np.zeros((batch,) + model.input_shape))
    flops: Dict[str, float] = {}
    x = probe
    for name, index in zip(model.stage_names, range(model.num_stages)):
        stage = model.stage(index)
        with FlopCounter() as counter:
            x = stage(x)
        flops[name] = counter.total_flops / batch
    model.train(was_training)
    return flops


def count_model_flops(model: SplitModel, batch: int = 1) -> float:
    """Per-image forward FLOPs of the whole runnable model."""
    return sum(count_stage_flops(model, batch).values())
