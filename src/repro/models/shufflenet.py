"""Tiny runnable ShuffleNetV2 analogue (stages Stem, Stage2-4, Conv5, FC)."""

from __future__ import annotations

import numpy as np

from ..nn.layers import GlobalAvgPool2d, Linear, Sequential
from .blocks import ShuffleDownUnit, ShuffleUnit, conv_bn_relu
from .split import SplitModel


def tiny_shufflenet_v2(num_classes: int = 10, image_size: int = 16,
                       width: int = 16, seed: int = 0) -> SplitModel:
    """Channel-split/shuffle network shrunk to laptop scale."""
    rng = np.random.default_rng(seed)
    w = width
    stages = [
        ("Stem", conv_bn_relu(3, w, 3, rng=rng)),
        ("Stage2", Sequential(
            ShuffleDownUnit(w, 2 * w, rng=rng),
            ShuffleUnit(2 * w, rng=rng),
        )),
        ("Stage3", Sequential(
            ShuffleDownUnit(2 * w, 4 * w, rng=rng),
            ShuffleUnit(4 * w, rng=rng),
        )),
        ("Stage4", ShuffleDownUnit(4 * w, 8 * w, rng=rng)),
        ("Conv5", Sequential(
            conv_bn_relu(8 * w, 8 * w, 1, rng=rng),
            GlobalAvgPool2d(),
        )),
        ("FC", Linear(8 * w, num_classes, rng=rng)),
    ]
    return SplitModel("ShuffleNetV2-tiny", stages, input_shape=(3, image_size, image_size))
