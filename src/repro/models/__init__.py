"""``repro.models`` — the paper's five DNNs.

Each model exists as (a) a full-scale :class:`~repro.models.graph.ModelGraph`
with published FLOP/param/activation numbers used by APO and the simulator,
and (b) a tiny runnable :class:`~repro.models.split.SplitModel` on the numpy
substrate used by the real FT-DMP training path and the accuracy studies.
"""

from .catalog import ALL_MODELS, FIGURE_MODELS, RAW_IMAGE_BYTES, all_graphs, model_graph
from .graph import (
    FEATURE_DTYPE_BYTES,
    INPUT_DTYPE_BYTES,
    WEIGHT_DTYPE_BYTES,
    ModelGraph,
    PartitionPoint,
    StageSpec,
)
from .flops import FlopCounter, count_forward_flops, count_model_flops, count_stage_flops
from .registry import TINY_FACTORIES, tiny_model
from .split import SplitModel, assert_split_consistent

__all__ = [
    "ModelGraph", "StageSpec", "PartitionPoint",
    "FEATURE_DTYPE_BYTES", "INPUT_DTYPE_BYTES", "WEIGHT_DTYPE_BYTES",
    "model_graph", "all_graphs", "ALL_MODELS", "FIGURE_MODELS",
    "RAW_IMAGE_BYTES",
    "SplitModel", "assert_split_consistent", "tiny_model", "TINY_FACTORIES",
    "FlopCounter", "count_stage_flops", "count_model_flops",
    "count_forward_flops",
]
