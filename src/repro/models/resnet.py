"""Tiny runnable ResNet50 analogue (same stage layout: Conv1..Conv5, FC)."""

from __future__ import annotations

import numpy as np

from ..nn.layers import GlobalAvgPool2d, Linear, Sequential
from .blocks import Bottleneck, conv_bn_relu
from .split import SplitModel


def tiny_resnet50(num_classes: int = 10, image_size: int = 16, width: int = 16,
                  seed: int = 0) -> SplitModel:
    """A five-conv-stage bottleneck ResNet shrunk to laptop scale.

    Stage names mirror the full-scale :func:`repro.models.catalog.resnet50`
    graph so APO partition labels carry over (None, +Conv1 ... +FC).
    """
    rng = np.random.default_rng(seed)
    w = width
    stages = [
        ("Conv1", conv_bn_relu(3, w, 3, rng=rng)),
        ("Conv2", Bottleneck(w, w // 2, 2 * w, rng=rng)),
        ("Conv3", Bottleneck(2 * w, w, 4 * w, stride=2, rng=rng)),
        ("Conv4", Bottleneck(4 * w, 2 * w, 8 * w, stride=2, rng=rng)),
        ("Conv5", Sequential(
            Bottleneck(8 * w, 4 * w, 16 * w, stride=2, rng=rng),
            GlobalAvgPool2d(),
        )),
        ("FC", Linear(16 * w, num_classes, rng=rng)),
    ]
    return SplitModel("ResNet50-tiny", stages, input_shape=(3, image_size, image_size))
