"""The ``@guarded_by`` annotation: one convention, two enforcers.

.. code-block:: python

    @guarded_by("_lock", "spans", "dropped_spans")
    class Tracer:
        def __init__(self):
            self._lock = threading.Lock()
            ...

declares that ``self.spans`` and ``self.dropped_spans`` may only be
touched while ``self._lock`` is held.  The declaration is consumed by:

* the **static** ND003 rule (:mod:`repro.lint.rules`), which proves every
  ``self.<attr>`` access in the class sits inside a matching
  ``with self.<lock>:`` block; and
* the **runtime** sanitizer (:mod:`repro.lint.sanitizer`): when enabled,
  the decorated class transparently wraps its lock in a
  :class:`~repro.lint.sanitizer.TrackedLock` at assignment time (feeding
  the lock-order graph) and flags any write to a guarded attribute from
  a thread other than the constructing thread that does not hold the
  lock.

``__init__`` is exempt in both enforcers — construction happens before
the instance is shared.  The decorator stacks: multiple ``guarded_by``
decorations merge their attribute maps (one lock per attribute; the
innermost decorator wins on conflict).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict

from .sanitizer import SANITIZER, Violation

__all__ = ["guarded_by", "guard_map"]

_HOOKED = "_nd_guard_hooked"
_INIT_DONE = "_nd_init_done"
_OWNER = "_nd_owner_thread"


def guard_map(obj: Any) -> Dict[str, str]:
    """The merged attr -> lock declaration of an object or class."""
    cls = obj if isinstance(obj, type) else type(obj)
    return dict(getattr(cls, "__guarded_by__", {}))


def guarded_by(lock_name: str, *attrs: str) -> Callable[[type], type]:
    """Declare ``attrs`` of the decorated class as guarded by ``lock_name``."""
    if not attrs:
        raise ValueError("guarded_by needs at least one attribute name")
    if not lock_name.isidentifier() or \
            not all(a.isidentifier() for a in attrs):
        raise ValueError("lock and attribute names must be identifiers")

    def decorate(cls: type) -> type:
        mapping = dict(getattr(cls, "__guarded_by__", {}))
        for attr in attrs:
            mapping.setdefault(attr, lock_name)
        cls.__guarded_by__ = mapping
        _install_hooks(cls)
        return cls

    return decorate


def _is_lock_like(value: Any) -> bool:
    return hasattr(value, "acquire") and hasattr(value, "release")


def _install_hooks(cls: type) -> None:
    """Wrap ``__setattr__`` / ``__init__`` once per decorated class."""
    if cls.__dict__.get(_HOOKED):
        return
    setattr(cls, _HOOKED, True)
    original_setattr = cls.__setattr__
    original_init = cls.__init__

    def hooked_setattr(self, name: str, value: Any) -> None:
        if SANITIZER.enabled:
            mapping = getattr(type(self), "__guarded_by__", {})
            if name in mapping.values() and _is_lock_like(value):
                value = SANITIZER.track_lock(
                    value, f"{type(self).__name__}.{name}")
            elif name in mapping and self.__dict__.get(_INIT_DONE):
                _check_guarded_write(self, name, mapping[name])
        original_setattr(self, name, value)

    def hooked_init(self, *args: Any, **kwargs: Any) -> None:
        original_init(self, *args, **kwargs)
        self.__dict__[_OWNER] = threading.get_ident()
        self.__dict__[_INIT_DONE] = True

    cls.__setattr__ = hooked_setattr
    cls.__init__ = hooked_init


def _check_guarded_write(self: Any, attr: str, lock_name: str) -> None:
    lock = self.__dict__.get(lock_name)
    held = getattr(lock, "held_by_current_thread", None)
    if held is None:
        # the lock predates sanitizer enablement (or is missing):
        # ownership cannot be proven either way, so stay silent
        return
    if held():
        return
    if threading.get_ident() == self.__dict__.get(_OWNER):
        # single-threaded use by the constructing thread is not a race
        return
    SANITIZER.record(Violation(
        kind="unguarded-write",
        detail=f"{type(self).__name__}.{attr} written by thread "
               f"{threading.get_ident()} without holding "
               f"{type(self).__name__}.{lock_name}",
    ))
