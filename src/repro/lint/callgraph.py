"""Project-wide symbol table and call graph for the ND006-ND010 rules.

The per-module rules (ND001-ND005) see one file at a time; the
interprocedural tier needs to answer project-wide questions — *which
class does ``self.report`` hold*, *does anything ``dispatch`` calls
eventually hit the fabric* — so this module builds, from the already
parsed :class:`~repro.lint.rules.ModuleContext` set:

* a **symbol table** (:class:`ProjectIndex`): every class with its
  methods, its declared contracts (``@conserves`` / ``@fenced_by`` /
  ``@guarded_by``), its lock-like attributes, and an attribute-type map
  inferred from ``self.attr = ClassName(...)`` assignments in
  ``__init__`` (plus dataclass-style annotated assignments);
* a **call graph** keyed by qualified name (``module::Class.method``):
  edges are resolved conservatively — ``self.method()``,
  ``self.attr.method()`` through the inferred attribute types, local
  variables assigned a known constructor, bare names through imports or
  a project-unique function name.  Unresolvable calls simply add no
  edge: the rules built on top only ever *miss* a diagnostic for them,
  never invent one;
* per-function **blocking primitives** (fabric ``send``,
  ``call_with_retry``, ``time.sleep``, file/checkpoint IO), plus
  :meth:`CallGraph.blocking_chain` which walks the edges to explain
  *why* a call eventually blocks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .rules import ModuleContext, _collect_imports

__all__ = [
    "BlockingSite",
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ProjectIndex",
    "module_key",
]

#: receivers treated as the network fabric (shared with ND005)
_FABRIC_RECEIVERS = {"network", "fabric"}
#: attribute calls that perform file IO (checkpoint/persistence writes)
_FILE_IO_ATTRS = {"write_bytes", "write_text", "read_bytes", "read_text"}


def module_key(path: str) -> str:
    """A stable module label for a file path: dotted from ``repro/`` down.

    Falls back to the stem for files outside the package (fixtures).
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = parts[-1:]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _decorator_label(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _str_args(call: ast.Call) -> List[str]:
    return [a.value for a in call.args
            if isinstance(a, ast.Constant) and isinstance(a.value, str)]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    path: str
    cls: Optional[str]
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    ctx: ModuleContext


@dataclass
class ClassInfo:
    """One class definition plus everything the rules read off it."""

    name: str
    module: str
    path: str
    node: ast.ClassDef
    ctx: ModuleContext
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: self.attr -> project class name (from __init__ constructor calls)
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attributes assigned a threading.Lock()/RLock() anywhere in the class
    lock_attrs: Set[str] = field(default_factory=set)
    #: @conserves declarations: {"law", "lhs", "rhs", "mode", "line"}
    conserves: List[Dict] = field(default_factory=list)
    #: @fenced_by declaration: fence method name -> tuple of fenced attrs
    fence_method: Optional[str] = None
    fenced_attrs: Tuple[str, ...] = ()

    @property
    def qualname(self) -> str:
        return f"{self.module}::{self.name}"


@dataclass(frozen=True)
class BlockingSite:
    """One primitive blocking operation inside a function body."""

    kind: str  # "fabric-send" | "retry" | "sleep" | "file-io"
    detail: str
    line: int


class ProjectIndex:
    """Symbol table over every parsed module of one lint run."""

    def __init__(self, contexts: Sequence[ModuleContext]):
        self.contexts = list(contexts)
        self.classes: Dict[str, ClassInfo] = {}
        #: class simple name -> ClassInfo (first definition wins; the
        #: repo keeps class names unique, fixtures shadow harmlessly)
        self.functions: Dict[str, FunctionInfo] = {}
        #: module-level function simple name -> qualnames defining it
        self._by_name: Dict[str, List[str]] = {}
        for ctx in self.contexts:
            self._index_module(ctx)
        for info in list(self.classes.values()):
            self._infer_attr_types(info)

    # -- construction --------------------------------------------------------
    def _index_module(self, ctx: ModuleContext) -> None:
        module = module_key(ctx.path)
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                self._index_class(ctx, module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module}::{node.name}", module=module,
                    path=ctx.path, cls=None, name=node.name, node=node,
                    ctx=ctx)
                self.functions.setdefault(info.qualname, info)
                self._by_name.setdefault(node.name, []).append(info.qualname)

    def _index_class(self, ctx: ModuleContext, module: str,
                     node: ast.ClassDef) -> None:
        info = ClassInfo(name=node.name, module=module, path=ctx.path,
                         node=node, ctx=ctx)
        for decorator in node.decorator_list:
            label = _decorator_label(decorator)
            if not isinstance(decorator, ast.Call):
                continue
            if label == "conserves":
                literals = _str_args(decorator)
                if literals:
                    law = literals[0]
                    mode = "strict"
                    if len(literals) > 1:
                        mode = literals[1]
                    for kw in decorator.keywords:
                        if kw.arg == "mode" and \
                                isinstance(kw.value, ast.Constant):
                            mode = str(kw.value.value)
                    info.conserves.append(
                        {"law": law, "mode": mode,
                         "line": decorator.lineno})
            elif label == "fenced_by":
                literals = _str_args(decorator)
                if len(literals) >= 2:
                    info.fence_method = literals[0]
                    info.fenced_attrs = tuple(literals[1:])
            elif label == "guarded_by":
                literals = _str_args(decorator)
                if literals:
                    info.lock_attrs.add(literals[0])
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    qualname=f"{module}::{node.name}.{item.name}",
                    module=module, path=ctx.path, cls=node.name,
                    name=item.name, node=item, ctx=ctx)
                info.methods[item.name] = method
                self.functions[method.qualname] = method
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and _is_lock_ctor(sub.value):
                for target in sub.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        info.lock_attrs.add(target.attr)
        self.classes.setdefault(node.name, info)

    def _infer_attr_types(self, info: ClassInfo) -> None:
        """``self.attr = ClassName(...)`` in any method -> attr type."""
        for method in info.methods.values():
            for node in ast.walk(method.node):
                if not isinstance(node, ast.Assign):
                    continue
                cls_name = _constructed_class(node.value, self.classes)
                if cls_name is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute) and \
                            isinstance(target.value, ast.Name) and \
                            target.value.id == "self":
                        info.attr_types.setdefault(target.attr, cls_name)

    # -- queries -------------------------------------------------------------
    def conserved_fields(self) -> Dict[str, List[Tuple[ClassInfo, Dict]]]:
        """field name -> [(class, law)] across every @conserves class."""
        out: Dict[str, List[Tuple[ClassInfo, Dict]]] = {}
        from .contracts import parse_conservation
        for info in self.classes.values():
            for law in info.conserves:
                try:
                    lhs, rhs = parse_conservation(law["law"])
                except ValueError:
                    continue
                law["lhs"], law["rhs"] = lhs, tuple(rhs)
                for fieldname in (lhs, *rhs):
                    out.setdefault(fieldname, []).append((info, law))
        return out

    def receiver_class(self, func: FunctionInfo,
                       expr: ast.expr) -> Optional[ClassInfo]:
        """The project class an expression statically resolves to."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and func.cls is not None:
                return self.classes.get(func.cls)
            local = _local_type(func.node, expr.id, self.classes)
            if local is not None:
                return self.classes.get(local)
            return None
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and \
                expr.value.id == "self" and func.cls is not None:
            owner = self.classes.get(func.cls)
            if owner is not None:
                attr_type = owner.attr_types.get(expr.attr)
                if attr_type is not None:
                    return self.classes.get(attr_type)
        return None


def _is_lock_ctor(expr: ast.expr) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None)
    return name in ("Lock", "RLock")


def _constructed_class(expr: ast.expr,
                       classes: Dict[str, ClassInfo]) -> Optional[str]:
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name) and \
            expr.func.id in classes:
        return expr.func.id
    return None


def _local_type(fn_node: ast.AST, name: str,
                classes: Dict[str, ClassInfo]) -> Optional[str]:
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            cls_name = _constructed_class(node.value, classes)
            if cls_name is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return cls_name
    return None


class CallGraph:
    """Resolved call edges plus per-function blocking primitives."""

    def __init__(self, index: ProjectIndex):
        self.index = index
        self.edges: Dict[str, Set[str]] = {}
        #: qualname -> call line of each resolved edge (for chain reports)
        self.edge_lines: Dict[Tuple[str, str], int] = {}
        self.blocking: Dict[str, List[BlockingSite]] = {}
        self._reach_cache: Dict[str, Optional[List[str]]] = {}
        for func in index.functions.values():
            self._scan(func)

    # -- construction --------------------------------------------------------
    def _scan(self, func: FunctionInfo) -> None:
        qual = func.qualname
        self.edges.setdefault(qual, set())
        self.blocking.setdefault(qual, [])
        modules, symbols = _collect_imports(func.ctx.tree)
        for node in ast.walk(func.node):
            if not isinstance(node, ast.Call):
                continue
            primitive = self._primitive(node, modules, symbols)
            if primitive is not None:
                self.blocking[qual].append(primitive)
            for target in self._targets(func, node):
                self.edges[qual].add(target)
                self.edge_lines.setdefault((qual, target), node.lineno)

    def _primitive(self, node: ast.Call, modules: Dict[str, str],
                   symbols: Dict[str, Tuple[str, str]],
                   ) -> Optional[BlockingSite]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "call_with_retry":
                return BlockingSite("retry", "call_with_retry(...)",
                                    node.lineno)
            if symbols.get(func.id) == ("time", "sleep"):
                return BlockingSite("sleep", "time.sleep(...)", node.lineno)
            if func.id == "open":
                return BlockingSite("file-io", "open(...)", node.lineno)
            return None
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr == "send":
            recv = func.value
            recv_name = recv.id if isinstance(recv, ast.Name) else (
                recv.attr if isinstance(recv, ast.Attribute) else None)
            if recv_name in _FABRIC_RECEIVERS:
                return BlockingSite("fabric-send",
                                    f"{recv_name}.send(...)", node.lineno)
            return None
        if func.attr == "call_with_retry":
            return BlockingSite("retry", "call_with_retry(...)", node.lineno)
        if func.attr == "sleep" and isinstance(func.value, ast.Name) and \
                modules.get(func.value.id) == "time":
            return BlockingSite("sleep", "time.sleep(...)", node.lineno)
        if func.attr in _FILE_IO_ATTRS:
            return BlockingSite("file-io", f".{func.attr}(...)", node.lineno)
        return None

    def _targets(self, func: FunctionInfo, node: ast.Call) -> List[str]:
        callee = node.func
        index = self.index
        if isinstance(callee, ast.Name):
            # ClassName(...) -> __init__; project-unique function by name
            cls = index.classes.get(callee.id)
            if cls is not None and "__init__" in cls.methods:
                return [cls.methods["__init__"].qualname]
            candidates = index._by_name.get(callee.id, ())
            if len(candidates) == 1:
                return [candidates[0]]
            return []
        if not isinstance(callee, ast.Attribute):
            return []
        recv_cls = index.receiver_class(func, callee.value)
        if recv_cls is not None:
            method = recv_cls.methods.get(callee.attr)
            if method is not None:
                return [method.qualname]
        return []

    # -- queries -------------------------------------------------------------
    def blocking_chain(self, qual: str) -> Optional[List[str]]:
        """The shortest explanation of why ``qual`` blocks, or None.

        Returns ``["a", "b", "fabric-send ..."]`` meaning a calls b which
        performs the primitive; a directly-blocking function returns a
        one-element chain ending in its primitive description.
        """
        if qual in self._reach_cache:
            return self._reach_cache[qual]
        seen = {qual}
        queue: List[Tuple[str, List[str]]] = [(qual, [qual])]
        result: Optional[List[str]] = None
        while queue:
            current, path = queue.pop(0)
            sites = self.blocking.get(current, ())
            if sites:
                site = sites[0]
                result = path + [f"{site.kind} at line {site.line}: "
                                 f"{site.detail}"]
                break
            for succ in sorted(self.edges.get(current, ())):
                if succ not in seen:
                    seen.add(succ)
                    queue.append((succ, path + [succ]))
        self._reach_cache[qual] = result
        return result

    def resolve_call(self, func: FunctionInfo,
                     node: ast.Call) -> List[str]:
        """Public wrapper used by the rules for one specific call node."""
        return self._targets(func, node)
