"""The interprocedural rule tier (ND006-ND010).

Built on :mod:`repro.lint.callgraph`, these rules see the whole linted
tree at once.  A shared bounded **path enumerator** walks every
branch/early-return/exception path of a function body and hands each
non-compound statement to a rule-specific event extractor; the rules
then reason about event *order* (ND007 dominance) or event *sums*
(ND006 conservation) per path.

* **ND006 conservation** — classes declaring
  ``@conserves("lhs == a + b")`` must mutate those counters in balanced
  groups: in ``strict`` mode every path through a mutating method nets
  ``delta(lhs) == delta(a) + delta(b)``; in ``group`` mode every
  completing path must apply the *same* (lhs, rhs-sum) delta pair (for
  ledgers whose law closes only at end-of-run).  Mutations through a
  typed receiver (``self.report.completed += 1`` where ``self.report``
  holds a conserved class) are checked in the mutating function.
* **ND007 epoch fencing** — ``@fenced_by("_fence", ...)`` attributes may
  only be mutated on paths dominated by a ``self._fence(...)`` call, so
  a stale-epoch frame can never slip past the
  :class:`~repro.faults.errors.StaleEpochError` raise.  ``__init__`` and
  the fence method itself are exempt.
* **ND008 blocking-under-lock** — inside a ``with self.<lock>:`` region
  no fabric ``send``, ``call_with_retry``, ``time.sleep`` or
  checkpoint/file IO may be reachable, *transitively* through the call
  graph; the finding renders the offending call chain.
* **ND009 exception-safe accounting** — conserved-counter mutations and
  metric ``.inc()/.observe()`` calls inside a ``try`` body with handlers
  can be skipped by a caught fault mid-group, skewing the books; they
  must move to ``finally``, a context manager, or after the fault
  point.
* **ND010 fastpath equivalence manifest** — every module reading a
  :class:`~repro.fastpath.FastPathFlags` field ships a dual
  implementation and must be listed (with a non-empty equivalence-test
  set) in ``fastpath_equivalence.json``; the rule only runs when
  ``fastpath.py`` itself is in the linted file set, so partial-tree
  lints stay quiet.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import BlockingSite, CallGraph, ClassInfo, FunctionInfo, \
    ProjectIndex, module_key
from .findings import Finding
from .rules import _collect_imports

__all__ = [
    "check_conservation",
    "check_fencing",
    "check_lock_blocking",
    "check_exception_accounting",
    "check_fastpath_manifest",
    "collect_fastpath_usage",
    "PathOverflow",
    "enumerate_paths",
]

#: receiver-method calls treated as mutating fenced state (ND007)
_MUTATING_CALLS = {
    "load_state_dict", "import_training_state", "adopt_fleet",
    "apply_full_state", "apply_model_delta", "install_model",
}
#: metric instrument methods whose loss skews books (ND009)
_INSTRUMENT_CALLS = {"inc", "observe"}
#: receivers that look like a metrics handle (ND009)
_METRIC_ROOTS = {"m", "metrics", "_metrics", "_m"}

_MAX_PATHS = 128


# ---------------------------------------------------------------------------
# bounded path enumeration shared by ND006/ND007
# ---------------------------------------------------------------------------
class PathOverflow(Exception):
    """Raised when a function forks past the path budget."""


class _Path:
    __slots__ = ("events", "term")

    def __init__(self, events: Optional[list] = None,
                 term: Optional[str] = None):
        self.events = events if events is not None else []
        self.term = term

    def fork(self) -> "_Path":
        return _Path(list(self.events), self.term)


def enumerate_paths(body: Sequence[ast.stmt],
                    events_of: Callable[[ast.AST], list],
                    max_paths: int = _MAX_PATHS) -> List[_Path]:
    """Every execution path through ``body`` with its ordered events.

    ``events_of`` maps one simple statement or expression to the events
    it contributes.  Loops run zero-or-once (sufficient for per-path
    balance and dominance properties over loop-free accounting code),
    ``try`` forks into body-completes and fault-at-entry-per-handler
    paths, and nested function definitions are opaque.  Paths terminated
    by ``return``/``raise`` carry that terminator.
    """
    done: List[_Path] = []
    live = _exec_block(list(body), [_Path()], done, events_of, max_paths)
    for path in live:
        path.term = "fall"
    return done + live


def _check_budget(paths: List[_Path], max_paths: int) -> List[_Path]:
    if len(paths) > max_paths:
        raise PathOverflow()
    return paths


def _exec_block(stmts: List[ast.stmt], live: List[_Path],
                done: List[_Path], events_of, max_paths) -> List[_Path]:
    for stmt in stmts:
        if not live:
            break
        live = _exec_stmt(stmt, live, done, events_of, max_paths)
    return live


def _emit(live: List[_Path], node: Optional[ast.AST], events_of) -> None:
    if node is None:
        return
    events = events_of(node)
    if events:
        for path in live:
            path.events.extend(events)


def _exec_stmt(stmt: ast.stmt, live: List[_Path], done: List[_Path],
               events_of, max_paths) -> List[_Path]:
    if isinstance(stmt, ast.If):
        _emit(live, stmt.test, events_of)
        then = _exec_block(stmt.body, [p.fork() for p in live], done,
                           events_of, max_paths)
        other = _exec_block(stmt.orelse, [p.fork() for p in live], done,
                            events_of, max_paths)
        return _check_budget(then + other, max_paths)
    if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
        _emit(live, getattr(stmt, "test", None) or
              getattr(stmt, "iter", None), events_of)
        once = _exec_block(stmt.body, [p.fork() for p in live], done,
                           events_of, max_paths)
        merged = _check_budget([p.fork() for p in live] + once, max_paths)
        return _exec_block(stmt.orelse, merged, done, events_of, max_paths)
    if isinstance(stmt, ast.Try):
        # path A: the body completes, then orelse; paths B: a fault hits
        # before the body's effects land and a handler runs instead (the
        # most pessimistic prefix for conservation); finally runs on all
        ok = _exec_block(stmt.body, [p.fork() for p in live], done,
                         events_of, max_paths)
        ok = _exec_block(stmt.orelse, ok, done, events_of, max_paths)
        out = ok
        for handler in stmt.handlers:
            caught = _exec_block(handler.body, [p.fork() for p in live],
                                 done, events_of, max_paths)
            out = out + caught
        out = _check_budget(out, max_paths)
        return _exec_block(stmt.finalbody, out, done, events_of, max_paths)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            _emit(live, item.context_expr, events_of)
        return _exec_block(stmt.body, live, done, events_of, max_paths)
    if isinstance(stmt, ast.Return):
        _emit(live, stmt.value, events_of)
        for path in live:
            path.term = "return"
        done.extend(live)
        return []
    if isinstance(stmt, ast.Raise):
        _emit(live, stmt.exc, events_of)
        for path in live:
            path.term = "raise"
        done.extend(live)
        return []
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return live  # deferred execution: opaque to this analysis
    # simple statement (Assign/AugAssign/Expr/Assert/...): events in
    # source order via a sub-walk that skips nested function bodies
    _emit(live, stmt, events_of)
    return live


def _walk_expr(node: ast.AST):
    """ast.walk that does not descend into nested function/class defs."""
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            stack.append(child)


# ---------------------------------------------------------------------------
# ND006 — conservation
# ---------------------------------------------------------------------------
def _laws(index: ProjectIndex) -> List[Tuple[ClassInfo, Dict]]:
    out: List[Tuple[ClassInfo, Dict]] = []
    from .contracts import parse_conservation
    for info in index.classes.values():
        for law in info.conserves:
            try:
                lhs, rhs = parse_conservation(law["law"])
            except ValueError:
                continue
            law.setdefault("lhs", lhs)
            law.setdefault("rhs", tuple(rhs))
            out.append((info, law))
    return out


def _field_targets(node: ast.AST) -> List[Tuple[ast.expr, str]]:
    """(receiver expr, field) pairs a statement stores into."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    out: List[Tuple[ast.expr, str]] = []
    stack = targets
    while stack:
        target = stack.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            stack.extend(target.elts)
        elif isinstance(target, ast.Attribute):
            out.append((target.value, target.attr))
    return out


def _aug_delta(node: ast.AugAssign) -> Optional[int]:
    """The signed constant delta of ``x += C`` / ``x -= C``, else None."""
    if not (isinstance(node.value, ast.Constant) and
            isinstance(node.value.value, (int, float)) and
            not isinstance(node.value.value, bool)):
        return None
    value = node.value.value
    if isinstance(node.op, ast.Add):
        return int(value) if float(value).is_integer() else None
    if isinstance(node.op, ast.Sub):
        return -int(value) if float(value).is_integer() else None
    return None


def _conservation_events(index: ProjectIndex, func: FunctionInfo,
                         cls: ClassInfo, fields: Set[str],
                         node: ast.AST) -> list:
    """(kind, field, delta, line) events one statement contributes."""
    events: list = []
    for sub in _walk_expr(node):
        if isinstance(sub, ast.AugAssign):
            for recv, attr in _field_targets(sub):
                if attr in fields and \
                        index.receiver_class(func, recv) is cls:
                    events.append(("delta", attr, _aug_delta(sub),
                                   sub.lineno))
        elif isinstance(sub, ast.Assign):
            for recv, attr in _field_targets(sub):
                if attr in fields and \
                        index.receiver_class(func, recv) is cls:
                    events.append(("rebind", attr, None, sub.lineno))
    return events


def check_conservation(index: ProjectIndex,
                       graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    laws = _laws(index)
    if not laws:
        return findings
    for func in index.functions.values():
        for cls, law in laws:
            fields = {law["lhs"], *law["rhs"]}
            if func.cls == cls.name and func.name == "__init__":
                continue
            events_all = _conservation_events(index, func, cls, fields,
                                              func.node)
            if not events_all:
                continue
            findings.extend(_check_one_law(index, func, cls, law, fields))
    return findings


def _check_one_law(index: ProjectIndex, func: FunctionInfo, cls: ClassInfo,
                   law: Dict, fields: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    flagged_lines: Set[int] = set()

    def events_of(node: ast.AST) -> list:
        return _conservation_events(index, func, cls, fields, node)

    body = func.node.body
    try:
        paths = enumerate_paths(body, events_of)
    except PathOverflow:
        return [Finding(
            path=func.path, line=func.node.lineno, col=1, rule="ND006",
            message=f"{func.name}() forks past the path budget; ND006 "
                    f"cannot prove '{law['law']}' — split the method")]
    # non-constant deltas and rebinds defeat the proof outright
    for path in paths:
        for kind, fieldname, delta, line in path.events:
            if line in flagged_lines:
                continue
            if kind == "rebind":
                flagged_lines.add(line)
                findings.append(Finding(
                    path=func.path, line=line, col=1, rule="ND006",
                    message=f"conserved field '{fieldname}' of "
                            f"{cls.name} is rebound outside __init__; "
                            f"'{law['law']}' cannot be proven — use "
                            "balanced += / -= groups"))
            elif delta is None:
                flagged_lines.add(line)
                findings.append(Finding(
                    path=func.path, line=line, col=1, rule="ND006",
                    message=f"conserved field '{fieldname}' of "
                            f"{cls.name} is mutated by a non-constant "
                            f"delta; '{law['law']}' cannot be proven"))
    if flagged_lines:
        return findings

    def signature(path: _Path) -> Tuple[int, int]:
        lhs = sum(d for _, f, d, _ in path.events if f == law["lhs"])
        rhs = sum(d for _, f, d, _ in path.events if f != law["lhs"])
        return lhs, rhs

    if law["mode"] == "strict":
        for path in paths:
            lhs, rhs = signature(path)
            if lhs != rhs:
                findings.append(Finding(
                    path=func.path, line=func.node.lineno, col=1,
                    rule="ND006",
                    message=f"{func.name}() has a path leaving "
                            f"'{law['law']}' unbalanced "
                            f"(lhs {lhs:+d}, rhs {rhs:+d}); every "
                            "branch/early-return must mutate the "
                            "counters as a balanced group"))
                break
    else:  # group: completing paths must agree on the delta pair
        signatures: Set[Tuple[int, int]] = set()
        for path in paths:
            if path.term == "raise":
                continue  # error paths settle elsewhere (ND009's beat)
            if path.term == "return" and not path.events:
                continue  # guard-style early return before the group
            signatures.add(signature(path))
        if len(signatures) > 1:
            rendered = ", ".join(
                f"(lhs {l:+d}, rhs {r:+d})"
                for l, r in sorted(signatures))
            findings.append(Finding(
                path=func.path, line=func.node.lineno, col=1,
                rule="ND006",
                message=f"{func.name}() applies inconsistent deltas to "
                        f"'{law['law']}' across paths: {rendered}; every "
                        "completing path must account the outcome "
                        "exactly once"))
    return findings


# ---------------------------------------------------------------------------
# ND007 — epoch fencing
# ---------------------------------------------------------------------------
def _fence_events(func: FunctionInfo, info: ClassInfo,
                  node: ast.AST) -> list:
    """("fence", line) and ("mutate", attr, line, what) events."""
    events: list = []
    fence = info.fence_method
    fenced = set(info.fenced_attrs)
    for sub in _walk_expr(node):
        if isinstance(sub, ast.Call) and \
                isinstance(sub.func, ast.Attribute) and \
                isinstance(sub.func.value, ast.Name) and \
                sub.func.value.id == "self" and sub.func.attr == fence:
            events.append(("fence", sub.lineno))
        elif isinstance(sub, ast.Call) and \
                isinstance(sub.func, ast.Attribute) and \
                sub.func.attr in _MUTATING_CALLS:
            root = _self_attr_root(sub.func.value)
            if root is not None and root in fenced:
                events.append(("mutate", root, sub.lineno,
                               f"self.{root}.{sub.func.attr}(...)"))
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            for recv, attr in _field_targets(sub):
                if isinstance(recv, ast.Name) and recv.id == "self" and \
                        attr in fenced:
                    events.append(("mutate", attr, sub.lineno,
                                   f"self.{attr} = ..."))
                else:
                    root = _self_attr_root(recv)
                    if root is not None and root in fenced:
                        events.append(("mutate", root, sub.lineno,
                                       f"self.{root}.{attr} = ..."))
    # order events on one statement by line (walk order is unordered)
    events.sort(key=lambda e: e[1] if e[0] == "fence" else e[2])
    return events


def _self_attr_root(expr: ast.expr) -> Optional[str]:
    """``self.<root>`` at the base of an attribute chain, if any."""
    while isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return expr.attr
        expr = expr.value
    return None


def check_fencing(index: ProjectIndex, graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    for info in index.classes.values():
        if info.fence_method is None:
            continue
        for method in info.methods.values():
            if method.name in ("__init__", info.fence_method):
                continue
            if not _fence_events(method, info, method.node):
                # cheap prescan: collapses to "no events anywhere"
                continue
            findings.extend(_check_dominance(method, info))
    return findings


def _check_dominance(method: FunctionInfo, info: ClassInfo,
                     ) -> List[Finding]:
    findings: List[Finding] = []

    def events_of(node: ast.AST) -> list:
        return _fence_events(method, info, node)

    try:
        paths = enumerate_paths(method.node.body, events_of)
    except PathOverflow:
        return [Finding(
            path=method.path, line=method.node.lineno, col=1, rule="ND007",
            message=f"{method.name}() forks past the path budget; ND007 "
                    f"cannot prove {info.fence_method}() dominance — "
                    "split the method")]
    flagged: Set[int] = set()
    for path in paths:
        fenced = False
        for event in path.events:
            if event[0] == "fence":
                fenced = True
            elif not fenced:
                _, attr, line, what = event
                if line not in flagged:
                    flagged.add(line)
                    findings.append(Finding(
                        path=method.path, line=line, col=1, rule="ND007",
                        message=f"{what} mutates epoch-fenced state of "
                                f"{info.name} on a path with no "
                                f"dominating self.{info.fence_method}() "
                                "check; a stale frame could be applied"))
    return findings


# ---------------------------------------------------------------------------
# ND008 — blocking-under-lock
# ---------------------------------------------------------------------------
def _lock_name(item: ast.withitem, info: Optional[ClassInfo]) -> \
        Optional[str]:
    expr = item.context_expr
    if isinstance(expr, ast.Attribute) and \
            isinstance(expr.value, ast.Name) and expr.value.id == "self":
        attr = expr.attr
        if info is not None and attr in info.lock_attrs:
            return f"self.{attr}"
        if "lock" in attr.lower():
            return f"self.{attr}"
        return None
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return expr.id
    return None


def check_lock_blocking(index: ProjectIndex,
                        graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    for func in index.functions.values():
        info = index.classes.get(func.cls) if func.cls else None
        modules, symbols = _collect_imports(func.ctx.tree)

        def scan(node: ast.AST, held: Tuple[str, ...]) -> None:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                taken = [lock for lock in
                         (_lock_name(item, info) for item in node.items)
                         if lock is not None]
                for item in node.items:
                    scan(item, held)
                inner = held + tuple(taken)
                for child in node.body:
                    scan(child, inner)
                return
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                return  # deferred: may run without the lock
            if isinstance(node, ast.Call) and held:
                site = graph._primitive(node, modules, symbols)
                if site is not None:
                    findings.append(Finding(
                        path=func.path, line=node.lineno, col=1,
                        rule="ND008",
                        message=f"{site.detail} blocks while holding "
                                f"{held[-1]}; move the {site.kind} "
                                "outside the critical section"))
                else:
                    for target in graph.resolve_call(func, node):
                        chain = graph.blocking_chain(target)
                        if chain is not None:
                            names = [q.split("::", 1)[-1]
                                     for q in chain[:-1]]
                            findings.append(Finding(
                                path=func.path, line=node.lineno, col=1,
                                rule="ND008",
                                message=f"call reaches blocking "
                                        f"{chain[-1].split(' at ')[0]} "
                                        f"while holding {held[-1]} "
                                        f"(via {' -> '.join(names)})"))
                            break
            for child in ast.iter_child_nodes(node):
                scan(child, held)

        for child in func.node.body:
            scan(child, ())
    return findings


# ---------------------------------------------------------------------------
# ND009 — exception-safe accounting
# ---------------------------------------------------------------------------
def _is_instrument_call(node: ast.Call) -> bool:
    if not (isinstance(node.func, ast.Attribute) and
            node.func.attr in _INSTRUMENT_CALLS):
        return False
    # receiver chain must pass through a metrics-ish name: self.m.x.inc()
    expr = node.func.value
    while isinstance(expr, ast.Attribute):
        if expr.attr in _METRIC_ROOTS:
            return True
        expr = expr.value
    return isinstance(expr, ast.Name) and expr.id in _METRIC_ROOTS


def check_exception_accounting(index: ProjectIndex,
                               graph: CallGraph) -> List[Finding]:
    findings: List[Finding] = []
    laws = _laws(index)
    for func in index.functions.values():
        for node in _walk_expr(func.node):
            if not (isinstance(node, ast.Try) and node.handlers):
                continue
            for stmt in node.body:
                findings.extend(
                    _try_body_findings(index, laws, func, stmt))
    return findings


def _try_body_findings(index: ProjectIndex,
                       laws: List[Tuple[ClassInfo, Dict]],
                       func: FunctionInfo, stmt: ast.stmt,
                       ) -> List[Finding]:
    findings: List[Finding] = []
    for sub in _walk_expr(stmt):
        if isinstance(sub, ast.Try):
            return findings  # the nested try re-enters the outer walk
        if isinstance(sub, ast.AugAssign):
            for recv, attr in _field_targets(sub):
                for cls, law in laws:
                    if attr in {law["lhs"], *law["rhs"]} and \
                            index.receiver_class(func, recv) is cls:
                        findings.append(Finding(
                            path=func.path, line=sub.lineno, col=1,
                            rule="ND009",
                            message=f"conserved counter '{attr}' of "
                                    f"{cls.name} mutated inside a try "
                                    "body; a caught fault mid-group "
                                    "skews the books — move it to "
                                    "finally, a context manager, or "
                                    "past the fault point"))
        elif isinstance(sub, ast.Call) and _is_instrument_call(sub):
            findings.append(Finding(
                path=func.path, line=sub.lineno, col=1, rule="ND009",
                message=f".{sub.func.attr}() metric update inside a try "
                        "body with handlers; a caught fault skips it — "
                        "move it to finally or record after the fault "
                        "point"))
    return findings


# ---------------------------------------------------------------------------
# ND010 — fastpath equivalence manifest
# ---------------------------------------------------------------------------
def _flag_names(index: ProjectIndex) -> Set[str]:
    info = index.classes.get("FastPathFlags")
    if info is None or not info.path.endswith("fastpath.py"):
        return set()
    names: Set[str] = set()
    for node in info.node.body:
        if isinstance(node, ast.AnnAssign) and \
                isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def collect_fastpath_usage(index: ProjectIndex,
                           ) -> Dict[str, Dict[str, int]]:
    """flag -> {module -> first use line} across the linted tree."""
    flags = _flag_names(index)
    usage: Dict[str, Dict[str, int]] = {flag: {} for flag in flags}
    if not flags:
        return usage
    for ctx in index.contexts:
        module = module_key(ctx.path)
        if module.endswith("fastpath") or "/lint/" in ctx.path:
            continue
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in flags and \
                    isinstance(node.ctx, ast.Load):
                sites = usage[node.attr]
                if module not in sites or node.lineno < sites[module]:
                    sites[module] = node.lineno
    return usage


def check_fastpath_manifest(index: ProjectIndex,
                            manifest: Optional[dict],
                            ) -> List[Finding]:
    """Every flag-gated dual implementation is manifest-listed + tested."""
    findings: List[Finding] = []
    usage = collect_fastpath_usage(index)
    if not any(usage.values()):
        return findings  # fastpath.py not in the linted tree
    entries = (manifest or {}).get("flags", {})
    path_of: Dict[str, str] = {module_key(c.path): c.path
                               for c in index.contexts}
    for flag, sites in sorted(usage.items()):
        entry = entries.get(flag, {})
        listed = set(entry.get("modules", ()))
        tests = entry.get("tests", ())
        for module, line in sorted(sites.items()):
            if module not in listed:
                findings.append(Finding(
                    path=path_of.get(module, module), line=line, col=1,
                    rule="ND010",
                    message=f"fastpath flag '{flag}' gates a dual "
                            f"implementation in {module} but the module "
                            "is missing from fastpath_equivalence.json; "
                            "regenerate with 'repro lint "
                            "--update-manifest' and add its equivalence "
                            "test"))
        if sites and not tests:
            module, line = sorted(sites.items())[0]
            findings.append(Finding(
                path=path_of.get(module, module), line=line, col=1,
                rule="ND010",
                message=f"fastpath flag '{flag}' has no equivalence "
                        "tests recorded in fastpath_equivalence.json; a "
                        "vectorized path cannot ship without its "
                        "bit-exactness lockdown"))
    return findings
