"""ndlint: invariant-enforcing static analysis + runtime sanitizer.

Two halves, one convention:

* ``repro lint`` (see :mod:`repro.cli`) runs the AST rule catalogue over
  the package and exits nonzero on unbaselined findings.  The
  intraprocedural tier — ND001 determinism, ND002 accounting, ND003
  guarded-by, ND004 metric hygiene, ND005 retry discipline — checks one
  file at a time; the interprocedural tier (:mod:`repro.lint.callgraph`
  + :mod:`repro.lint.interproc`) builds a project-wide symbol table and
  call graph to prove ND006 conservation laws
  (:func:`~repro.lint.contracts.conserves`), ND007 epoch-fence dominance
  (:func:`~repro.lint.contracts.fenced_by`), ND008 blocking-under-lock
  reachability, ND009 exception-safe accounting, and ND010 fastpath
  equivalence-manifest coverage.  :mod:`repro.lint.baseline` gives the
  ruff-style ``--baseline``/``--update-baseline`` adoption workflow; and
* the :data:`SANITIZER` checks at runtime what the AST cannot: lock
  acquisition-order cycles (annotated with vector-clock happens-before
  verdicts), cross-thread writes to :func:`guarded_by`-declared state,
  and — cross-validating ND008 under the nemesis harness — fabric sends
  issued while a tracked lock is held.
"""

from .allowlist import Marker, parse_allows, parse_markers
from .baseline import diff_baseline, fingerprint, load_baseline, \
    render_baseline
from .contracts import conserves, fenced_by
from .engine import LintConfig, LintEngine, default_config, package_root
from .findings import Finding, render_json, render_text
from .guards import guard_map, guarded_by
from .sanitizer import (
    SANITIZER,
    ConcurrencySanitizer,
    SanitizerError,
    TrackedLock,
    VectorClock,
    Violation,
    sanitized,
)

__all__ = [
    "ConcurrencySanitizer",
    "Finding",
    "LintConfig",
    "LintEngine",
    "Marker",
    "SANITIZER",
    "SanitizerError",
    "TrackedLock",
    "VectorClock",
    "Violation",
    "conserves",
    "default_config",
    "diff_baseline",
    "fenced_by",
    "fingerprint",
    "guard_map",
    "guarded_by",
    "load_baseline",
    "package_root",
    "parse_allows",
    "parse_markers",
    "render_baseline",
    "render_json",
    "render_text",
    "sanitized",
]
