"""ndlint: invariant-enforcing static analysis + runtime sanitizer.

Two halves, one convention:

* ``repro lint`` (see :mod:`repro.cli`) runs the AST rule catalogue —
  ND001 determinism, ND002 accounting, ND003 guarded-by, ND004 metric
  hygiene, ND005 retry discipline — over the package and exits nonzero
  on findings; and
* the :data:`SANITIZER` checks at runtime what the AST cannot: lock
  acquisition-order cycles and cross-thread writes to
  :func:`guarded_by`-declared state.
"""

from .allowlist import parse_allows
from .engine import LintConfig, LintEngine, default_config, package_root
from .findings import Finding, render_json, render_text
from .guards import guard_map, guarded_by
from .sanitizer import (
    SANITIZER,
    ConcurrencySanitizer,
    SanitizerError,
    TrackedLock,
    Violation,
    sanitized,
)

__all__ = [
    "ConcurrencySanitizer",
    "Finding",
    "LintConfig",
    "LintEngine",
    "SANITIZER",
    "SanitizerError",
    "TrackedLock",
    "Violation",
    "default_config",
    "guard_map",
    "guarded_by",
    "package_root",
    "parse_allows",
    "render_json",
    "render_text",
    "sanitized",
]
