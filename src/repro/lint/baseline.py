"""The ruff-style lint baseline (``lint-baseline.json``).

Adopting a new rule tier over a living tree is all-or-nothing without a
ledger of known findings: the gate either stays red until every legacy
site is fixed, or the rule waits.  The baseline splits the difference —
**new findings fail, legacy findings are tracked**:

* ``repro lint --update-baseline`` records every current finding as a
  fingerprint (normalized path + rule + message, with a count, so two
  identical findings in one file are two ledger slots);
* ``repro lint --baseline lint-baseline.json`` subtracts the ledger from
  the run: only findings exceeding their baselined count fail the gate,
  and fingerprints that no longer occur are reported as *resolved* drift
  so the ledger can be re-recorded smaller.

Fingerprints deliberately exclude line numbers — unrelated edits above a
legacy site must not resurrect it — and normalize paths to the segment
after ``src/`` so absolute and relative invocations share a ledger.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .findings import Finding

__all__ = [
    "diff_baseline",
    "fingerprint",
    "load_baseline",
    "normalize_path",
    "render_baseline",
]


def normalize_path(path: str) -> str:
    """A repo-stable path: the part after ``src/`` when present."""
    posix = Path(path).as_posix()
    marker = "/src/"
    at = posix.rfind(marker)
    if at >= 0:
        return posix[at + len(marker):]
    if posix.startswith("src/"):
        return posix[len("src/"):]
    return posix.lstrip("/") if posix.startswith("/") else posix


def fingerprint(finding: Finding) -> str:
    return f"{normalize_path(finding.path)}::{finding.rule}::" \
           f"{finding.message}"


def load_baseline(path: Path) -> Dict[str, int]:
    """The fingerprint -> tolerated-count ledger, {} when absent."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text())
    findings = data.get("findings", {})
    return {str(k): int(v) for k, v in findings.items()}


def render_baseline(findings: Sequence[Finding]) -> str:
    counts: Dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "comment": "ndlint legacy-finding ledger; regenerate with "
                   "'repro lint --update-baseline'. New findings fail "
                   "the gate, entries here are tolerated until fixed.",
        "version": 1,
        "findings": {key: counts[key] for key in sorted(counts)},
    }
    return json.dumps(payload, indent=2) + "\n"


def diff_baseline(findings: Sequence[Finding], baseline: Dict[str, int],
                  ) -> Tuple[List[Finding], List[str], int]:
    """(new findings, resolved fingerprints, baselined-count).

    Findings are consumed against the ledger in sorted order, so which
    duplicate of an over-budget fingerprint is "new" is deterministic.
    """
    budget = dict(baseline)
    fresh: List[Finding] = []
    matched = 0
    for finding in sorted(findings):
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            fresh.append(finding)
    resolved = sorted(key for key, left in budget.items() if left > 0)
    return fresh, resolved, matched
