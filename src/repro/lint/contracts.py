"""Declared invariants consumed by the interprocedural rules.

Two class decorators turn prose invariants into machine-checked
contracts.  Both are near-zero-cost at runtime — they validate their
arguments once at decoration time and stash the declaration on the
class — and both are read *statically* from the AST by the ND006/ND007
rules, so the checks hold even for code paths no test executes.

``@conserves("granted == in_flight + available")``
    Declares a conservation law over integer counters of the class.
    ND006 proves every mutating method keeps the law: on **every**
    branch/early-return path, the net delta applied to the left-hand
    field equals the summed deltas of the right-hand fields (``strict``
    mode, the default).  ``mode="group"`` relaxes per-path balance to
    path *consistency* — every path through a method must apply the
    same (lhs, rhs-sum) delta — for ledgers whose law closes only at
    the end of a run (each resolution bumps exactly one right-hand
    counter; the runtime check settles the books).

``@fenced_by("_fence", "model", "model_version")``
    Declares that the named attributes are epoch-fenced state: every
    method that mutates them (directly, or transitively through the
    call graph) must be dominated by a call to the fencing check — a
    method that raises (e.g. :class:`~repro.faults.errors.StaleEpochError`)
    when the mutation must not proceed.  ND007 proves the dominance on
    every path; ``__init__`` is exempt, construction happens before the
    object is reachable from the fabric.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Tuple

__all__ = ["conserves", "fenced_by", "parse_conservation"]

#: ``lhs == t1 + t2 + ...`` over identifier field names
_CONSERVATION = re.compile(
    r"^\s*(?P<lhs>[A-Za-z_]\w*)\s*==\s*"
    r"(?P<rhs>[A-Za-z_]\w*(?:\s*\+\s*[A-Za-z_]\w*)*)\s*$")

_MODES = ("strict", "group")


def parse_conservation(law: str) -> Tuple[str, List[str]]:
    """Split ``"lhs == a + b + c"`` into ``("lhs", ["a", "b", "c"])``."""
    match = _CONSERVATION.match(law)
    if match is None:
        raise ValueError(
            f"conservation law {law!r} must read 'field == field + field"
            " + ...'")
    lhs = match.group("lhs")
    rhs = [term.strip() for term in match.group("rhs").split("+")]
    if lhs in rhs or len(set(rhs)) != len(rhs):
        raise ValueError(f"conservation law {law!r} repeats a field")
    return lhs, rhs


def conserves(law: str, mode: str = "strict") -> Callable[[type], type]:
    """Declare a conservation law over counter fields of the class."""
    lhs, rhs = parse_conservation(law)
    if mode not in _MODES:
        raise ValueError(f"unknown conservation mode {mode!r}; "
                         f"pick one of {_MODES}")

    def decorate(cls: type) -> type:
        laws: List[Dict] = list(getattr(cls, "__conserves__", ()))
        laws.append({"law": law, "lhs": lhs, "rhs": tuple(rhs),
                     "mode": mode})
        cls.__conserves__ = laws
        return cls

    return decorate


def fenced_by(fence: str, *attrs: str) -> Callable[[type], type]:
    """Declare ``attrs`` as epoch-fenced state checked by ``fence``."""
    if not attrs:
        raise ValueError("fenced_by needs at least one attribute name")
    if not fence.isidentifier() or \
            not all(a.isidentifier() for a in attrs):
        raise ValueError("fence and attribute names must be identifiers")

    def decorate(cls: type) -> type:
        mapping = dict(getattr(cls, "__fenced_by__", {}))
        for attr in attrs:
            mapping.setdefault(attr, fence)
        cls.__fenced_by__ = mapping
        return cls

    return decorate
