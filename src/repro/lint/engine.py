"""The ndlint engine: file discovery, allowlists, and the rule driver.

``LintEngine`` walks a set of paths, parses each ``*.py`` file once, runs
the per-module rules (ND001/ND002/ND003/ND005), then the cross-module
metrics pass (ND004) over every registration collected along the way.
Suppression happens in two layers:

* **module allowlists** (``LintConfig.rule_allow``) — whole files or
  directories where a rule does not apply by design, e.g. the obs
  tracing module *is* the sanctioned wall-clock seam (ND001) and the
  durability package *is* maintenance traffic (ND002);
* **inline markers** — ``# ndlint: allow[ND00x] -- justification`` at
  individual sites (see :mod:`repro.lint.allowlist`).

The engine also owns the ``obs/METRICS.md`` manifest: ND004 requires
every metric family to be listed there, and :meth:`LintEngine.render_manifest`
regenerates it deterministically from the registrations it collected.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, ProjectIndex
from .findings import Finding
from .interproc import (
    check_conservation,
    check_exception_accounting,
    check_fastpath_manifest,
    check_fencing,
    check_lock_blocking,
    collect_fastpath_usage,
)
from .rules import (
    MetricRegistration,
    ModuleContext,
    check_accounting,
    check_determinism,
    check_guarded_by,
    check_metric_hygiene,
    check_retry_discipline,
    collect_metric_registrations,
)

__all__ = ["LintConfig", "LintEngine", "default_config", "package_root"]

_MANIFEST_NAME = re.compile(r"^\| `(?P<name>[a-z][a-z0-9_]*)`")


@dataclass
class LintConfig:
    """Rule allowlists plus manifest wiring.

    ``rule_allow`` maps a rule ID to path patterns: a pattern ending in
    ``/`` matches any file under that directory, anything else matches
    by path suffix.  ``manifest_path`` is the METRICS.md file ND004
    checks against (``None`` disables the manifest check — fixture tests
    use that); ``manifest_scope`` restricts the membership check to
    paths containing the substring, so linting fixture trees does not
    demand their metrics appear in the package manifest.
    """

    rule_allow: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    manifest_path: Optional[Path] = None
    manifest_scope: Optional[str] = "repro/"
    #: run the ND006-ND010 call-graph tier
    interprocedural: bool = True
    #: the ND010 equivalence-test manifest (None disables the rule)
    fastpath_manifest_path: Optional[Path] = None
    #: emit ND000 for justified markers whose rule never fires
    flag_unused_markers: bool = True

    def allows(self, rule: str, path: str) -> bool:
        posix = Path(path).as_posix()
        for pattern in self.rule_allow.get(rule, ()):
            if pattern.endswith("/"):
                if f"/{pattern}" in f"/{posix}" or posix.startswith(pattern):
                    return True
            elif posix.endswith(pattern):
                return True
        return False


def package_root() -> Path:
    """The installed ``repro`` package directory (the default lint scope)."""
    return Path(__file__).resolve().parent.parent


def default_config() -> LintConfig:
    root = package_root()
    return LintConfig(
        rule_allow={
            # the tracing module is the one sanctioned wall-clock seam
            "ND001": ("repro/obs/tracing.py",),
            # maintenance modules: durability (scrub/replication/
            # checkpoint), snapshot persistence, the store that defines
            # the API, and fault injection (which corrupts *below* the
            # workload on purpose)
            "ND002": (
                "repro/durability/",
                "repro/storage/persistence.py",
                "repro/storage/objectstore.py",
                "repro/faults/injector.py",
            ),
        },
        manifest_path=root / "obs" / "METRICS.md",
        fastpath_manifest_path=root / "fastpath_equivalence.json",
    )


def parse_manifest(path: Path) -> Optional[Set[str]]:
    """Family names listed in METRICS.md, or None if the file is absent."""
    if not path.is_file():
        return None
    names: Set[str] = set()
    for line in path.read_text().splitlines():
        match = _MANIFEST_NAME.match(line.strip())
        if match:
            names.add(match.group("name"))
    return names


class LintEngine:
    """Runs the rule catalogue over a file set."""

    def __init__(self, config: Optional[LintConfig] = None):
        self.config = config if config is not None else default_config()
        #: every registration seen by the last :meth:`run`
        self.registrations: List[MetricRegistration] = []
        self._inline_allows: Dict[str, Dict[int, Set[str]]] = {}
        self._contexts: List[ModuleContext] = []
        #: (path, line, rule) inline suppressions that actually fired
        self._marker_hits: Set[Tuple[str, int, str]] = set()
        #: flag -> {module -> line} from the last interprocedural run
        self.fastpath_usage: Dict[str, Dict[str, int]] = {}

    # -- discovery ----------------------------------------------------------
    @staticmethod
    def discover(paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        return files

    # -- the driver ---------------------------------------------------------
    def run(self, paths: Sequence[Path]) -> List[Finding]:
        files = self.discover(paths)
        findings: List[Finding] = []
        self.registrations = []
        self._contexts = []
        self._marker_hits = set()
        self.fastpath_usage = {}
        for file in files:
            findings.extend(self.lint_file(file))
        manifest_names: Optional[Set[str]] = None
        if self.config.manifest_path is not None:
            manifest_names = parse_manifest(self.config.manifest_path)
            if manifest_names is None:
                manifest_names = set()  # every family is then "missing"
        for finding in check_metric_hygiene(
                self.registrations, manifest_names=manifest_names,
                manifest_scope=self.config.manifest_scope):
            if not self._suppressed(finding):
                findings.append(finding)
        if self.config.interprocedural and self._contexts:
            findings.extend(self._run_interprocedural())
        if self.config.flag_unused_markers:
            findings.extend(self._unused_markers())
        return sorted(findings)

    def _run_interprocedural(self) -> List[Finding]:
        """The ND006-ND010 tier over every module of this run."""
        index = ProjectIndex(self._contexts)
        graph = CallGraph(index)
        self.fastpath_usage = collect_fastpath_usage(index)
        manifest: Optional[dict] = None
        if self.config.fastpath_manifest_path is not None and \
                self.config.fastpath_manifest_path.is_file():
            manifest = json.loads(
                self.config.fastpath_manifest_path.read_text())
        findings: List[Finding] = []
        for rule_findings in (
            check_conservation(index, graph),
            check_fencing(index, graph),
            check_lock_blocking(index, graph),
            check_exception_accounting(index, graph),
            check_fastpath_manifest(index, manifest),
        ):
            for finding in rule_findings:
                if not self._suppressed(finding):
                    findings.append(finding)
        return findings

    def _unused_markers(self) -> List[Finding]:
        """ND000 for justified markers whose rule never fired this run."""
        findings: List[Finding] = []
        for ctx in self._contexts:
            for marker in ctx.markers:
                for rule in marker.rules:
                    if any((ctx.path, line, rule) in self._marker_hits
                           for line in marker.covered):
                        continue
                    findings.append(Finding(
                        path=ctx.path, line=marker.line, col=marker.col,
                        rule="ND000",
                        message=f"allow marker for {rule} never fired; "
                                "delete the marker or fix the rule id so "
                                "suppressions cannot rot"))
        return findings

    def _suppressed(self, finding: Finding) -> bool:
        if self.config.allows(finding.rule, finding.path):
            return True
        allows = self._inline_allows.get(finding.path, {})
        if finding.rule in allows.get(finding.line, ()):
            self._marker_hits.add((finding.path, finding.line,
                                   finding.rule))
            return True
        return False

    def lint_file(self, file: Path) -> List[Finding]:
        """Per-module rules for one file; ND004 data is collected aside."""
        try:
            ctx = ModuleContext.parse(str(file), file.read_text())
        except SyntaxError as exc:
            return [Finding(path=str(file), line=exc.lineno or 1, col=1,
                            rule="ND000",
                            message=f"file does not parse: {exc.msg}")]
        self._inline_allows[str(file)] = ctx.allows
        self._contexts.append(ctx)
        findings = list(ctx.allow_findings)  # ND000s are never suppressed
        for rule_findings in (
            check_determinism(ctx),
            check_accounting(ctx),
            check_guarded_by(ctx),
            check_retry_discipline(ctx),
        ):
            for finding in rule_findings:
                if not self._suppressed(finding):
                    findings.append(finding)
        self.registrations.extend(collect_metric_registrations(ctx))
        return findings

    # -- the METRICS.md manifest -------------------------------------------
    def render_manifest(self) -> str:
        """METRICS.md content from the last run's registrations."""
        rows: List[Tuple[str, MetricRegistration]] = sorted(
            {reg.name: reg for reg in self.registrations
             if reg.name is not None}.items()
        )
        lines = [
            "# Metric family manifest",
            "",
            "Generated by `repro lint --update-manifest` — do not edit by",
            "hand.  ND004 requires every `MetricsRegistry` family to be",
            "registered at exactly one site and listed here; a missing row",
            "fails the lint gate until the manifest is regenerated.",
            "",
            "| family | type | labels | help |",
            "|---|---|---|---|",
        ]
        for name, reg in rows:
            labels = ", ".join(reg.labels) if reg.labels else "-"
            lines.append(f"| `{name}` | {reg.kind} | {labels} | {reg.help} |")
        lines.append("")
        lines.append(f"{len(rows)} families.")
        lines.append("")
        return "\n".join(lines)

    def write_manifest(self, path: Optional[Path] = None) -> Path:
        target = path if path is not None else self.config.manifest_path
        if target is None:
            raise ValueError("no manifest path configured")
        target.write_text(self.render_manifest())
        return target

    # -- the fastpath equivalence manifest ----------------------------------
    def render_fastpath_manifest(self) -> str:
        """fastpath_equivalence.json content from the last run's usage.

        The ``modules`` lists are regenerated from the call-graph scan;
        the hand-maintained ``tests`` lists (the bit-exactness lockdown
        for each flag) are carried over from the manifest on disk, so a
        regeneration can never silently drop a lockdown.
        """
        existing: dict = {}
        if self.config.fastpath_manifest_path is not None and \
                self.config.fastpath_manifest_path.is_file():
            existing = json.loads(
                self.config.fastpath_manifest_path.read_text())
        flags: Dict[str, dict] = {}
        for flag, sites in sorted(self.fastpath_usage.items()):
            previous = existing.get("flags", {}).get(flag, {})
            flags[flag] = {
                "modules": sorted(sites),
                "tests": sorted(previous.get("tests", [])),
            }
        payload = {
            "comment": "fastpath dual-implementation registry; module "
                       "lists are generated by 'repro lint "
                       "--update-manifest', the tests lists are the "
                       "hand-maintained equivalence lockdown ND010 "
                       "requires to be non-empty.",
            "version": 1,
            "flags": flags,
        }
        return json.dumps(payload, indent=2) + "\n"

    def write_fastpath_manifest(self, path: Optional[Path] = None) -> Path:
        target = path if path is not None \
            else self.config.fastpath_manifest_path
        if target is None:
            raise ValueError("no fastpath manifest path configured")
        if not self.fastpath_usage:
            raise ValueError(
                "no fastpath usage collected; run the engine over a tree "
                "containing repro/fastpath.py first")
        target.write_text(self.render_fastpath_manifest())
        return target
