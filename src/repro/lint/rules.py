"""The ndlint rule catalogue (ND001-ND005), implemented over the AST.

Every rule consumes a parsed :class:`ModuleContext` and yields
:class:`~repro.lint.findings.Finding` records; the engine applies module
allowlists and inline ``# ndlint: allow[...]`` markers afterwards.

* **ND001 determinism** — no wall-clock or entropy reads
  (``time.time``/``perf_counter``/``monotonic``, stdlib ``random``,
  ``os.urandom``, argless ``datetime.now``, unseeded ``default_rng()``)
  outside the obs/tracing allowlist: simulation code must run on the
  fault injector's logical tick or the sanctioned
  :func:`repro.obs.tracing.wall_clock` seam.
* **ND002 accounting** — ``ObjectStore.peek`` / ``iter_items`` are
  maintenance reads that bypass workload IO accounting; only maintenance
  modules (durability, checkpoint/persistence, scrub, fault injection)
  may call them.
* **ND003 guarded-by** — attributes declared via the
  ``@guarded_by("lock")`` decorator or a trailing ``# guarded by: lock``
  comment may only be touched inside a matching ``with self.<lock>:``
  block (``__init__`` is exempt; nested functions must take the lock
  themselves because they may run on other threads).
* **ND004 metrics hygiene** — metric family names must be literal
  snake_case strings, registered at exactly one site repo-wide, and
  listed in the generated ``obs/METRICS.md`` manifest.
* **ND005 retry discipline** — fabric ``send`` calls must sit inside a
  :func:`~repro.faults.retry.call_with_retry` thunk (a lambda, or a
  nested function handed to ``call_with_retry`` in the same scope) or be
  explicitly marked ``# ndlint: fire-and-forget -- <why>``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .allowlist import Marker, parse_markers
from .findings import Finding

__all__ = [
    "ModuleContext",
    "MetricRegistration",
    "check_determinism",
    "check_accounting",
    "check_guarded_by",
    "check_retry_discipline",
    "collect_metric_registrations",
    "check_metric_hygiene",
    "SNAKE_CASE",
]

#: wall-clock reads on the ``time`` module
_BANNED_TIME = {"time", "perf_counter", "monotonic",
                "time_ns", "perf_counter_ns", "monotonic_ns"}
#: argless datetime-class constructors of "now"
_BANNED_NOW = {"now", "utcnow", "today"}
#: registry registration methods (ND004)
_REGISTER_METHODS = {"counter", "gauge", "histogram"}
#: receivers treated as a MetricsRegistry (ND004)
_METRIC_RECEIVERS = {"metrics", "registry"}
#: receivers treated as the network fabric (ND005)
_FABRIC_RECEIVERS = {"network", "fabric"}
#: maintenance-only ObjectStore entry points (ND002)
_MAINTENANCE_READS = {"peek", "iter_items"}

SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*[a-z0-9]$")

_GUARD_COMMENT = re.compile(r"#\s*guarded by:\s*(?P<lock>\w+)")


@dataclass
class ModuleContext:
    """One parsed source file plus everything the rules need to see."""

    path: str
    source: str
    tree: ast.Module
    lines: List[str]
    allows: Dict[int, Set[str]]
    allow_findings: List[Finding]
    markers: List[Marker] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "ModuleContext":
        tree = ast.parse(source, filename=path)
        markers, allow_findings = parse_markers(path, source)
        allows: Dict[int, Set[str]] = {}
        for marker in markers:
            for lineno in marker.covered:
                allows.setdefault(lineno, set()).update(marker.rules)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines(), allows=allows,
                   allow_findings=allow_findings, markers=markers)


def _finding(ctx: ModuleContext, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(path=ctx.path, line=node.lineno,
                   col=node.col_offset + 1, rule=rule, message=message)


# ---------------------------------------------------------------------------
# import resolution shared by ND001
# ---------------------------------------------------------------------------
def _collect_imports(tree: ast.Module) -> Tuple[Dict[str, str],
                                                Dict[str, Tuple[str, str]]]:
    """(alias -> module name, alias -> (module, symbol)) over all scopes."""
    modules: Dict[str, str] = {}
    symbols: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                modules[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for item in node.names:
                symbols[item.asname or item.name] = (node.module, item.name)
    return modules, symbols


# ---------------------------------------------------------------------------
# ND001 — determinism
# ---------------------------------------------------------------------------
def check_determinism(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    modules, symbols = _collect_imports(ctx.tree)

    def resolve(func: ast.AST) -> Optional[Tuple[str, str]]:
        """(module, symbol) a call target resolves to, if importable."""
        if isinstance(func, ast.Name):
            return symbols.get(func.id)
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id in modules:
                return modules[base.id], func.attr
            # datetime.datetime.now() / aliased `from datetime import datetime`
            if isinstance(base, ast.Attribute) and \
                    isinstance(base.value, ast.Name) and \
                    modules.get(base.value.id) == "datetime":
                return f"datetime.{base.attr}", func.attr
            if isinstance(base, ast.Name) and base.id in symbols:
                mod, sym = symbols[base.id]
                return f"{mod}.{sym}", func.attr
        return None

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "default_rng" \
                and not node.args and not node.keywords:
            findings.append(_finding(
                ctx, node, "ND001",
                "unseeded default_rng() is nondeterministic; pass an "
                "explicit seed"))
            continue
        target = resolve(func)
        if target is None:
            continue
        module, symbol = target
        if module == "time" and symbol in _BANNED_TIME:
            findings.append(_finding(
                ctx, node, "ND001",
                f"wall-clock read time.{symbol}(); simulation code must use "
                "the injector tick or repro.obs.tracing.wall_clock()"))
        elif module == "os" and symbol == "urandom":
            findings.append(_finding(
                ctx, node, "ND001",
                "os.urandom() is nondeterministic; derive bytes from a "
                "seeded rng"))
        elif module == "random":
            findings.append(_finding(
                ctx, node, "ND001",
                f"stdlib random.{symbol}() draws from unseeded global "
                "state; use numpy's default_rng(seed)"))
        elif module in ("datetime.datetime", "datetime.date") and \
                symbol in _BANNED_NOW and not node.args and not node.keywords:
            findings.append(_finding(
                ctx, node, "ND001",
                f"argless {module.split('.')[-1]}.{symbol}() reads the wall "
                "clock; timestamps must come from the logical clock"))
    return findings


# ---------------------------------------------------------------------------
# ND002 — workload-IO accounting
# ---------------------------------------------------------------------------
def check_accounting(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MAINTENANCE_READS:
            findings.append(_finding(
                ctx, node, "ND002",
                f"maintenance read .{node.func.attr}() bypasses workload IO "
                "accounting; only durability/checkpoint/scrub modules may "
                "use it"))
    return findings


# ---------------------------------------------------------------------------
# ND003 — guarded-by
# ---------------------------------------------------------------------------
def _guarded_attrs(ctx: ModuleContext,
                   cls: ast.ClassDef) -> Dict[str, str]:
    """attr -> lock declared by decorators and # guarded by: comments."""
    guarded: Dict[str, str] = {}
    for decorator in cls.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = decorator.func
        label = name.id if isinstance(name, ast.Name) else (
            name.attr if isinstance(name, ast.Attribute) else None)
        if label != "guarded_by" or not decorator.args:
            continue
        literals = [a.value for a in decorator.args
                    if isinstance(a, ast.Constant) and isinstance(a.value, str)]
        if len(literals) >= 2:
            lock, attrs = literals[0], literals[1:]
            for attr in attrs:
                guarded[attr] = lock
    # trailing "# guarded by: <lock>" comments on self.<attr> assignments
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        line = ctx.lines[node.lineno - 1] if node.lineno <= len(ctx.lines) \
            else ""
        match = _GUARD_COMMENT.search(line)
        if match is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute) and \
                    isinstance(target.value, ast.Name) and \
                    target.value.id == "self":
                guarded[target.attr] = match.group("lock")
    return guarded


def _with_locks(item: ast.withitem) -> Optional[str]:
    """The lock attr name of a ``with self.<lock>:`` context item."""
    expr = item.context_expr
    if isinstance(expr, ast.Attribute) and \
            isinstance(expr.value, ast.Name) and expr.value.id == "self":
        return expr.attr
    return None


def check_guarded_by(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []

    def scan(node: ast.AST, guarded: Dict[str, str],
             held: frozenset) -> None:
        if isinstance(node, ast.With):
            taken = {lock for lock in map(_with_locks, node.items)
                     if lock is not None}
            for item in node.items:
                scan(item, guarded, held)
            inner = held | taken
            for child in node.body:
                scan(child, guarded, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # a nested function may run on another thread: it must take
            # the lock itself, so the held set does not flow in
            body = node.body if isinstance(node.body, list) else [node.body]
            for child in body:
                scan(child, guarded, frozenset())
            return
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self" and node.attr in guarded:
            lock = guarded[node.attr]
            if lock not in held:
                # AugAssign targets parse as Store; reads and writes both
                # need the lock
                verb = "written" if isinstance(node.ctx, (ast.Store, ast.Del)) \
                    else "read"
                findings.append(_finding(
                    ctx, node, "ND003",
                    f"self.{node.attr} is declared guarded by self.{lock} "
                    f"but is {verb} outside a 'with self.{lock}:' block"))
        for child in ast.iter_child_nodes(node):
            scan(child, guarded, held)

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        guarded = _guarded_attrs(ctx, node)
        if not guarded:
            continue
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name == "__init__":
                    continue  # construction happens before sharing
                for child in item.body:
                    scan(child, guarded, frozenset())
    return findings


# ---------------------------------------------------------------------------
# ND004 — metrics hygiene
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MetricRegistration:
    """One ``metrics.counter/gauge/histogram(...)`` call site."""

    name: Optional[str]  # None when the name is not a literal
    kind: str
    help: str
    labels: Tuple[str, ...]
    path: str
    line: int
    col: int


def _is_metrics_receiver(value: ast.AST) -> bool:
    if isinstance(value, ast.Name):
        return value.id in _METRIC_RECEIVERS
    if isinstance(value, ast.Attribute):
        return value.attr in _METRIC_RECEIVERS
    return False


def collect_metric_registrations(ctx: ModuleContext,
                                 ) -> List[MetricRegistration]:
    out: List[MetricRegistration] = []
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and
                isinstance(node.func, ast.Attribute) and
                node.func.attr in _REGISTER_METHODS and
                _is_metrics_receiver(node.func.value)):
            continue
        name: Optional[str] = None
        if node.args and isinstance(node.args[0], ast.Constant) and \
                isinstance(node.args[0].value, str):
            name = node.args[0].value
        help_text = ""
        if len(node.args) > 1 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            help_text = node.args[1].value
        labels: Tuple[str, ...] = ()
        label_nodes = [kw.value for kw in node.keywords
                       if kw.arg == "label_names"]
        if len(node.args) > 2:
            label_nodes.append(node.args[2])
        for label_node in label_nodes:
            if isinstance(label_node, (ast.Tuple, ast.List)):
                labels = tuple(
                    e.value for e in label_node.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                )
        out.append(MetricRegistration(
            name=name, kind=node.func.attr, help=help_text, labels=labels,
            path=ctx.path, line=node.lineno, col=node.col_offset + 1,
        ))
    return out


def check_metric_hygiene(registrations: Sequence[MetricRegistration],
                         manifest_names: Optional[Set[str]] = None,
                         manifest_scope: Optional[str] = None,
                         ) -> List[Finding]:
    """Cross-module pass: literal snake_case, repo-wide unique, in manifest.

    ``manifest_names`` is the set of families ``obs/METRICS.md`` lists
    (``None`` skips the manifest check entirely); ``manifest_scope``
    limits the manifest check to paths containing that substring, so
    lint fixtures outside the package are not expected in the manifest.
    """
    findings: List[Finding] = []
    first_site: Dict[str, MetricRegistration] = {}
    for reg in registrations:
        if reg.name is None:
            findings.append(Finding(
                path=reg.path, line=reg.line, col=reg.col, rule="ND004",
                message=f"metric family name passed to .{reg.kind}() must "
                        "be a string literal so the manifest can be "
                        "generated statically"))
            continue
        if not SNAKE_CASE.match(reg.name):
            findings.append(Finding(
                path=reg.path, line=reg.line, col=reg.col, rule="ND004",
                message=f"metric family {reg.name!r} is not snake_case"))
        earlier = first_site.get(reg.name)
        if earlier is not None:
            findings.append(Finding(
                path=reg.path, line=reg.line, col=reg.col, rule="ND004",
                message=f"metric family {reg.name!r} already registered at "
                        f"{earlier.path}:{earlier.line}; families must have "
                        "exactly one registration site repo-wide"))
        else:
            first_site[reg.name] = reg
        if manifest_names is not None and \
                (manifest_scope is None or manifest_scope in reg.path) and \
                reg.name not in manifest_names:
            findings.append(Finding(
                path=reg.path, line=reg.line, col=reg.col, rule="ND004",
                message=f"metric family {reg.name!r} is missing from the "
                        "obs/METRICS.md manifest; regenerate it with "
                        "'repro lint --update-manifest'"))
    return findings


# ---------------------------------------------------------------------------
# ND005 — retry discipline
# ---------------------------------------------------------------------------
def _is_fabric_send(node: ast.Call) -> bool:
    if not (isinstance(node.func, ast.Attribute) and
            node.func.attr == "send"):
        return False
    value = node.func.value
    if isinstance(value, ast.Name):
        return value.id in _FABRIC_RECEIVERS
    if isinstance(value, ast.Attribute):
        return value.attr in _FABRIC_RECEIVERS
    return False


def _retry_thunk_names(scope: ast.AST) -> Set[str]:
    """Names of functions passed to call_with_retry inside ``scope``."""
    names: Set[str] = set()
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        label = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if label != "call_with_retry":
            continue
        for arg in node.args[:1]:
            if isinstance(arg, ast.Name):
                names.add(arg.id)
    return names


def check_retry_discipline(ctx: ModuleContext) -> List[Finding]:
    findings: List[Finding] = []

    def scan(node: ast.AST, under_retry: bool,
             thunks: Set[str]) -> None:
        if isinstance(node, ast.Lambda):
            # lambdas wrapping sends are retry thunks by convention
            scan(node.body, True, thunks)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner_thunks = thunks | _retry_thunk_names(node)
            covered = node.name in inner_thunks
            for child in node.body:
                scan(child, covered, inner_thunks)
            return
        if isinstance(node, ast.Call) and _is_fabric_send(node) and \
                not under_retry:
            findings.append(_finding(
                ctx, node, "ND005",
                "fabric transfer outside a RetryPolicy: wrap the send in "
                "call_with_retry(...) or mark the site "
                "'# ndlint: fire-and-forget -- <why>'"))
        for child in ast.iter_child_nodes(node):
            scan(child, under_retry, thunks)

    scan(ctx.tree, False, set())
    return findings
