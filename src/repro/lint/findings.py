"""Finding records and report rendering for ``repro lint``.

A :class:`Finding` pins one invariant violation to a rule ID and a
``path:line:col`` location.  The CLI renders findings either as
human-readable text (one line per finding, sorted by location) or as a
JSON report for the CI gate artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

__all__ = ["Finding", "render_text", "render_json"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding."""
    lines: List[str] = [
        f"{f.location()}: {f.rule} {f.message}" for f in sorted(findings)
    ]
    lines.append(
        f"repro lint: {len(findings)} finding"
        f"{'' if len(findings) == 1 else 's'}"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """The machine-readable report the CI gate uploads as an artifact."""
    return json.dumps(
        {
            "findings": [f.to_dict() for f in sorted(findings)],
            "count": len(findings),
            "clean": not findings,
        },
        indent=indent,
        sort_keys=True,
    )
