"""Runtime concurrency sanitizer: lock-order graph + guarded-state checks.

The static ND003 rule proves that *this repo's* code takes the declared
lock around guarded state; this module checks the things an AST cannot:

* **lock-order cycles** — every :class:`TrackedLock` acquisition while
  other tracked locks are held adds edges to a global acquisition-order
  graph keyed by lock *name* (``Class._lock``); the first edge that
  closes a cycle records a ``lock-order-cycle`` violation with the full
  path, i.e. a potential deadlock even if this run did not hang;
* **unguarded cross-thread writes** — classes annotated with
  :func:`repro.lint.guards.guarded_by` report a ``unguarded-write``
  violation when a thread other than the instance's constructing thread
  writes a guarded attribute without holding the declared lock;
* **blocking-under-lock** — the fabric calls :meth:`check_blocking`
  before every transfer, so a send issued while *any* tracked lock is
  held records a ``blocking-under-lock`` violation: the runtime
  cross-check of the static ND008 verdict, exercised by the nemesis
  harness under ``NDPIPE_SANITIZE``;
* **happens-before annotation** — each thread carries a vector clock;
  releasing a tracked lock publishes the releaser's clock and acquiring
  it joins that clock into the acquirer's (the lock hand-off is the
  happens-before edge).  Lock-order cycle reports are annotated
  ``hb=concurrent`` when the two conflicting acquisitions were causally
  unordered (genuinely racing threads — a real deadlock window) versus
  ``hb=ordered`` (serialized, e.g. phased initialization).

The sanitizer is off by default and costs one global flag check when
off.  Tests and chaos runs switch it on (``NDPIPE_SANITIZE=1`` via the
suite's conftest, or :func:`sanitized` as a context manager); guarded
classes then transparently wrap their locks in :class:`TrackedLock` at
assignment time, so the whole cluster is instrumented with no call-site
changes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

__all__ = ["ConcurrencySanitizer", "SANITIZER", "SanitizerError",
           "TrackedLock", "VectorClock", "Violation", "sanitized"]


class SanitizerError(RuntimeError):
    """Raised in ``raise`` mode, or by :meth:`assert_clean`."""


@dataclass(frozen=True)
class Violation:
    """One concurrency-invariant breach observed at runtime."""

    kind: str  # "lock-order-cycle" | "unguarded-write" | "blocking-under-lock"
    detail: str


Clock = Dict[int, int]


class VectorClock:
    """Per-thread vector clocks joined across lock hand-off edges.

    The only happens-before edges modelled are tracked-lock release ->
    subsequent acquire (enough to separate phased initialization from
    genuinely concurrent acquisition patterns); thread start/join edges
    are deliberately out of scope, so ``ordered`` verdicts are sound but
    not complete.
    """

    def __init__(self):
        self._mutex = threading.Lock()
        self._threads: Dict[int, Clock] = {}

    def snapshot(self, ident: int) -> Clock:
        with self._mutex:
            return dict(self._threads.get(ident, {}))

    def tick(self, ident: int) -> Clock:
        """Advance ``ident``'s component; returns the new clock copy."""
        with self._mutex:
            clock = self._threads.setdefault(ident, {})
            clock[ident] = clock.get(ident, 0) + 1
            return dict(clock)

    def join(self, ident: int, other: Optional[Clock]) -> None:
        """Merge ``other`` into ``ident``'s clock (componentwise max)."""
        if not other:
            return
        with self._mutex:
            clock = self._threads.setdefault(ident, {})
            for component, value in other.items():
                if value > clock.get(component, 0):
                    clock[component] = value

    @staticmethod
    def ordered(a: Optional[Clock], b: Optional[Clock]) -> bool:
        """True when one clock happens-before (or equals) the other."""
        if a is None or b is None:
            return False
        a_le_b = all(v <= b.get(k, 0) for k, v in a.items())
        b_le_a = all(v <= a.get(k, 0) for k, v in b.items())
        return a_le_b or b_le_a

    def clear(self) -> None:
        with self._mutex:
            self._threads.clear()


class _LockGraph:
    """Directed acquisition-order graph over lock names."""

    def __init__(self):
        self._edges: Dict[str, Set[str]] = {}
        #: first-seen acquirer clock per edge, for hb annotation
        self._edge_clocks: Dict[tuple, Optional[Clock]] = {}
        self._mutex = threading.Lock()  # internal; never tracked

    def add_edge(self, held: str, acquired: str,
                 clock: Optional[Clock] = None,
                 ) -> Optional[tuple]:
        """Record held -> acquired with the acquirer's vector clock.

        Returns ``(cycle, reverse_clock)`` when the edge closes a cycle:
        the node path, plus the clock recorded when the first edge of
        the pre-existing reverse path was drawn (``None`` if unknown) so
        the caller can annotate whether the conflicting acquisitions
        were causally ordered.
        """
        if held == acquired:
            return None
        with self._mutex:
            successors = self._edges.setdefault(held, set())
            if acquired in successors:
                return None
            path = self._path(acquired, held)
            successors.add(acquired)
            self._edge_clocks.setdefault((held, acquired), clock)
            if path is not None:
                reverse_clock = None
                if len(path) > 1:
                    reverse_clock = self._edge_clocks.get(
                        (path[0], path[1]))
                return [held] + path, reverse_clock
        return None

    def _path(self, src: str, dst: str) -> Optional[List[str]]:
        """A src -> ... -> dst path through existing edges, if one exists."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for succ in self._edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, path + [succ]))
        return None

    def edges(self) -> Dict[str, Set[str]]:
        with self._mutex:
            return {k: set(v) for k, v in self._edges.items()}

    def clear(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._edge_clocks.clear()


class TrackedLock:
    """Wraps a ``threading.Lock``/``RLock`` to feed the order graph.

    Supports the context-manager protocol plus ``acquire``/``release``/
    ``locked``, so it drops in wherever the plain lock lived.  Reentrant
    acquisitions (RLock semantics) add no edges.
    """

    _held = threading.local()  # per-thread stack of TrackedLock names

    def __init__(self, inner, name: str,
                 sanitizer: "ConcurrencySanitizer"):
        self._inner = inner
        self.name = name
        self._sanitizer = sanitizer
        self._owner: Optional[int] = None
        self._count = 0
        #: clock published by the last releaser (the happens-before edge)
        self._release_clock: Optional[Clock] = None

    # -- lock protocol ------------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ident = threading.get_ident()
        if self._owner == ident:
            # reentrant re-acquire (RLock): no ordering information
            if not self._inner.acquire(blocking, timeout):
                return False
            self._count += 1
            return True
        if not self._inner.acquire(blocking, timeout):
            return False
        self._owner = ident
        self._count = 1
        clocks = self._sanitizer.clocks
        clocks.join(ident, self._release_clock)
        clock = clocks.tick(ident)
        stack = self._stack()
        for held_name in stack:
            closed = self._sanitizer.graph.add_edge(
                held_name, self.name, clock)
            if closed is not None:
                # add_edge returns the cycle already closed
                # ([held, acquired, ..., held]) plus the vector clock of
                # the acquisition that drew the reverse edge
                cycle, reverse_clock = closed
                hb = ("ordered"
                      if VectorClock.ordered(clock, reverse_clock)
                      else "concurrent")
                self._sanitizer.record(Violation(
                    kind="lock-order-cycle",
                    detail="lock acquisition order cycle (potential "
                           "deadlock): " + " -> ".join(cycle)
                           + f" [hb={hb}]",
                ))
        stack.append(self.name)
        return True

    def release(self) -> None:
        ident = threading.get_ident()
        if self._owner == ident:
            self._count -= 1
            if self._count == 0:
                self._owner = None
                stack = self._stack()
                if self.name in stack:
                    stack.remove(self.name)
                # publish the releaser's clock: whoever acquires next
                # joins it, establishing release -> acquire ordering
                self._release_clock = self._sanitizer.clocks.tick(ident)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked() if hasattr(self._inner, "locked") \
            else self._owner is not None

    # -- queries ------------------------------------------------------------
    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    @classmethod
    def _stack(cls) -> List[str]:
        stack = getattr(cls._held, "stack", None)
        if stack is None:
            stack = cls._held.stack = []
        return stack

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


class ConcurrencySanitizer:
    """Global switchboard: enable/disable, violations, the lock graph."""

    def __init__(self):
        self.enabled = False
        self.mode = "record"  # or "raise"
        self.graph = _LockGraph()
        self.clocks = VectorClock()
        self._violations: List[Violation] = []
        self._mutex = threading.Lock()

    # -- lifecycle ----------------------------------------------------------
    def enable(self, mode: str = "record") -> None:
        if mode not in ("record", "raise"):
            raise ValueError(f"unknown sanitizer mode {mode!r}")
        self.mode = mode
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._mutex:
            self._violations.clear()
        self.graph.clear()
        self.clocks.clear()

    # -- recording ----------------------------------------------------------
    def record(self, violation: Violation) -> None:
        with self._mutex:
            self._violations.append(violation)
        if self.mode == "raise":
            raise SanitizerError(f"{violation.kind}: {violation.detail}")

    @property
    def violations(self) -> List[Violation]:
        with self._mutex:
            return list(self._violations)

    def drain(self) -> List[Violation]:
        """Pop and return everything recorded so far."""
        with self._mutex:
            out = list(self._violations)
            self._violations.clear()
        return out

    def assert_clean(self) -> None:
        violations = self.violations
        if violations:
            details = "; ".join(f"{v.kind}: {v.detail}" for v in violations)
            raise SanitizerError(
                f"{len(violations)} concurrency violation(s): {details}")

    def check_blocking(self, detail: str) -> None:
        """Runtime cross-check of ND008: fail if any tracked lock is held.

        Blocking primitives (the fabric's ``send`` is the canonical one)
        call this before doing the slow thing; if the calling thread
        holds any :class:`TrackedLock`, the operation would stall every
        other thread contending for it — exactly what the static ND008
        rule proves never happens, so a hit here is either a lint escape
        or an unjustified ``# ndlint: allow[ND008]``.
        """
        if not self.enabled:
            return
        stack = TrackedLock._stack()
        if stack:
            self.record(Violation(
                kind="blocking-under-lock",
                detail=f"{detail} while holding " + " -> ".join(stack)
                       + " (runtime ND008 cross-check)",
            ))

    # -- instrumentation ----------------------------------------------------
    def track_lock(self, lock, name: str) -> TrackedLock:
        """Wrap a lock so its acquisitions feed the order graph."""
        if isinstance(lock, TrackedLock):
            return lock
        return TrackedLock(lock, name, self)


#: the process-wide sanitizer the guards consult
SANITIZER = ConcurrencySanitizer()


@contextmanager
def sanitized(mode: str = "record") -> Iterator[ConcurrencySanitizer]:
    """Enable the global sanitizer for a scope; restore + clear on exit.

    Tests use this so intentional violations (cycle fixtures) never leak
    into the suite-wide ``NDPIPE_SANITIZE`` accounting.
    """
    prior_enabled, prior_mode = SANITIZER.enabled, SANITIZER.mode
    prior_violations = SANITIZER.drain()
    SANITIZER.graph.clear()
    SANITIZER.enable(mode)
    try:
        yield SANITIZER
    finally:
        SANITIZER.reset()
        SANITIZER.mode = prior_mode
        SANITIZER.enabled = prior_enabled
        for violation in prior_violations:
            SANITIZER._violations.append(violation)
