"""Inline allow markers for ``repro lint``.

A finding can be suppressed at its source line with a justified marker:

* ``# ndlint: allow[ND002] -- replication-repair donor path is maintenance``
* ``# ndlint: allow[ND001,ND005] -- reason covering both rules``
* ``# ndlint: fire-and-forget -- best-effort hint, loss is acceptable``
  (shorthand for ``allow[ND005]`` at intentional one-shot fabric sends)

The justification after ``--`` is mandatory: a bare marker still
suppresses nothing for free — it raises an ``ND000`` finding so the gate
stays red until someone writes down *why* the invariant does not apply.
A marker on a comment-only line covers the next source line, so long
statements can carry their justification above themselves.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from .findings import Finding

__all__ = ["parse_allows"]

_MARKER = re.compile(
    r"#\s*ndlint:\s*(?:allow\[(?P<rules>[A-Z0-9,\s]+)\]|"
    r"(?P<faf>fire-and-forget))"
    r"\s*(?:--\s*(?P<why>.*\S))?"
)


def parse_allows(path: str, source: str,
                 ) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Scan ``source`` for markers; returns (line -> allowed rules, ND000s).

    Lines are 1-based.  A marker trailing a statement covers that line; a
    marker on its own line covers the following line as well.
    """
    allows: Dict[int, Set[str]] = {}
    findings: List[Finding] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _MARKER.search(text)
        if match is None:
            continue
        if match.group("faf"):
            rules = {"ND005"}
        else:
            rules = {r.strip() for r in match.group("rules").split(",")
                     if r.strip()}
        if not match.group("why"):
            findings.append(Finding(
                path=path, line=lineno, col=match.start() + 1, rule="ND000",
                message="allow marker needs a justification: "
                        "# ndlint: ... -- <why this is safe>",
            ))
            continue
        allows.setdefault(lineno, set()).update(rules)
        if text[:match.start()].strip() == "":
            # comment-only line: the marker covers the next statement line
            allows.setdefault(lineno + 1, set()).update(rules)
    return allows, findings
