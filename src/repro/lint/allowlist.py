"""Inline allow markers for ``repro lint``.

A finding can be suppressed at its source line with a justified marker:

* ``# ndlint: allow[ND002] -- replication-repair donor path is maintenance``
* ``# ndlint: allow[ND001,ND005] -- reason covering both rules``
* ``# ndlint: fire-and-forget -- best-effort hint, loss is acceptable``
  (shorthand for ``allow[ND005]`` at intentional one-shot fabric sends)

The justification after ``--`` is mandatory: a bare marker still
suppresses nothing for free — it raises an ``ND000`` finding so the gate
stays red until someone writes down *why* the invariant does not apply.
A marker on a comment-only line covers the next source line, so long
statements can carry their justification above themselves.

Markers are recognised from real comment **tokens** only: a marker-shaped
string inside a docstring or multiline literal (say, documentation that
quotes the syntax) suppresses nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from .findings import Finding

__all__ = ["Marker", "parse_allows", "parse_markers"]

_MARKER = re.compile(
    r"#\s*ndlint:\s*(?:allow\[(?P<rules>[A-Z0-9,\s]+)\]|"
    r"(?P<faf>fire-and-forget))"
    r"\s*(?:--\s*(?P<why>.*\S))?"
)


def _comment_tokens(source: str) -> Iterator[Tuple[int, int, str, str]]:
    """(line, col, comment text, physical line) for each real comment.

    Tokenizing keeps marker-lookalikes inside string literals inert; on
    a tokenization error (lint also runs over deliberately broken
    fixtures) the scan degrades to trusting every line.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string, tok.line
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            hash_at = text.find("#")
            if hash_at >= 0:
                yield lineno, hash_at, text[hash_at:], text


@dataclass(frozen=True)
class Marker:
    """One justified inline marker plus the source lines it covers."""

    line: int
    col: int
    rules: Tuple[str, ...]
    covered: Tuple[int, ...]


def parse_markers(path: str, source: str,
                  ) -> Tuple[List[Marker], List[Finding]]:
    """Justified markers in ``source`` plus ND000s for bare ones.

    Lines are 1-based.  A marker trailing a statement covers that line; a
    marker on its own line covers the following line as well.
    """
    markers: List[Marker] = []
    findings: List[Finding] = []
    for lineno, col, comment, line_text in _comment_tokens(source):
        match = _MARKER.search(comment)
        if match is None:
            continue
        if match.group("faf"):
            rules = {"ND005"}
        else:
            rules = {r.strip() for r in match.group("rules").split(",")
                     if r.strip()}
        if not match.group("why"):
            findings.append(Finding(
                path=path, line=lineno, col=col + match.start() + 1,
                rule="ND000",
                message="allow marker needs a justification: "
                        "# ndlint: ... -- <why this is safe>",
            ))
            continue
        covered = (lineno,)
        if line_text[:col].strip() == "":
            # comment-only line: the marker covers the next statement line
            covered = (lineno, lineno + 1)
        markers.append(Marker(line=lineno, col=col + 1,
                              rules=tuple(sorted(rules)), covered=covered))
    return markers, findings


def parse_allows(path: str, source: str,
                 ) -> Tuple[Dict[int, Set[str]], List[Finding]]:
    """Scan ``source`` for markers; returns (line -> allowed rules, ND000s)."""
    markers, findings = parse_markers(path, source)
    allows: Dict[int, Set[str]] = {}
    for marker in markers:
        for lineno in marker.covered:
            allows.setdefault(lineno, set()).update(marker.rules)
    return allows, findings
