"""Retry with exponential backoff for fleet dispatch.

The Tuner wraps every per-store dispatch (offline-inference triggers,
Check-N-Run delta sends) in :func:`call_with_retry` so a dropped message
or a store that recovers between attempts does not abort a whole
campaign.  Backoff is *accounted*, not slept, by default: the repro's
fabric models time as byte counts, so the policy records how many seconds
of backoff a real deployment would have spent instead of stalling the
test suite.  Pass ``sleep=time.sleep`` for wall-clock behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

from .errors import TransientFaultError

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Exponential-backoff schedule plus cumulative accounting.

    Delay before attempt ``k`` (1-based retries) is
    ``min(base_delay_s * multiplier**(k-1), max_delay_s)`` — deterministic,
    no jitter, so fault tests replay exactly.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    #: real sleeper (e.g. ``time.sleep``); None = account only
    sleep: Optional[Callable[[float], None]] = None

    # cumulative accounting across every call made under this policy
    calls: int = field(default=0, init=False)
    attempts: int = field(default=0, init=False)
    retries: int = field(default=0, init=False)
    giveups: int = field(default=0, init=False)
    backoff_s: float = field(default=0.0, init=False)

    # observability seam (kept out of __init__/__eq__): when bound, the
    # same accounting lands in a shared MetricsRegistry
    _metrics: Optional[object] = field(default=None, init=False, repr=False,
                                       compare=False)

    def bind_metrics(self, metrics) -> None:
        """Mirror retry accounting into ``metrics`` (a MetricsRegistry)."""
        self._metrics = metrics
        self._m_attempts = metrics.counter(
            "retry_attempts_total", "dispatch attempts under the policy")
        self._m_retries = metrics.counter(
            "retry_retries_total", "attempts that were retried after a fault")
        self._m_giveups = metrics.counter(
            "retry_giveups_total", "dispatches abandoned after max attempts")
        self._m_backoff = metrics.counter(
            "retry_backoff_seconds_total", "accounted exponential backoff")

    def _record(self, counter_name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            getattr(self, counter_name).inc(amount)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay_for(self, retry_index: int) -> float:
        """Backoff seconds before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        return min(self.base_delay_s * self.multiplier ** (retry_index - 1),
                   self.max_delay_s)

    def _backoff(self, retry_index: int) -> None:
        delay = self.delay_for(retry_index)
        self.backoff_s += delay
        self._record("_m_backoff", delay)
        if self.sleep is not None:
            self.sleep(delay)


def call_with_retry(fn: Callable[[], T], policy: RetryPolicy,
                    retryable: Tuple[Type[BaseException], ...] = (
                        TransientFaultError,),
                    on_retry: Optional[Callable[[int, BaseException], None]]
                    = None) -> T:
    """Call ``fn`` under ``policy``; re-raise the last error on give-up.

    Only ``retryable`` exceptions trigger another attempt; anything else
    propagates immediately.  ``on_retry(attempt_index, error)`` is invoked
    before each backoff, letting callers log degraded operation.
    """
    policy.calls += 1
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        policy.attempts += 1
        policy._record("_m_attempts")
        try:
            return fn()
        except retryable as exc:
            last = exc
            if attempt == policy.max_attempts:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            policy.retries += 1
            policy._record("_m_retries")
            policy._backoff(attempt)
    policy.giveups += 1
    policy._record("_m_giveups")
    assert last is not None
    raise last
