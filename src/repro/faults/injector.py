"""Deterministic fault injection for the runnable NDPipe cluster.

A :class:`FaultInjector` owns a schedule of :mod:`~repro.faults.events`
pinned to logical ticks and hooks into the system through injectable
callbacks:

* ``NetworkFabric.fault_filter`` — every transfer advances the clock one
  tick, then may be dropped (:class:`MessageDroppedError`) or charged
  extra latency;
* ``ThreadedPipeline.stage_hook`` — every stage item advances the clock
  and may be slowed;
* registered ``PipeStore`` objects — crash/recover/slow-accelerator
  events call ``fail()`` / ``repair()`` / set ``slowdown`` directly.

Because the clock is driven by the workload itself, "crash pipestore-1
after the 12th message" replays bit-identically across runs — which is
what lets the chaos suite assert exact accounting under failure.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..lint.guards import guarded_by
from .errors import FaultConfigError, MessageDroppedError, TunerCrashError
from .events import (
    AddLatency,
    BitRot,
    DropMessages,
    FaultEvent,
    SlowAccelerator,
    SlowStage,
    StoreCrash,
    StoreRecover,
    TornWrite,
    TunerCrash,
    TunerRecover,
)


class _Budget:
    """An armed drop/latency allowance consumed by matching transfers."""

    def __init__(self, kind: Optional[str], count: int, seconds: float = 0.0,
                 dst: Optional[str] = None):
        self.kind = kind
        self.remaining = count
        self.seconds = seconds
        self.dst = dst

    def matches(self, kind: str, dst: Optional[str] = None) -> bool:
        return (self.remaining > 0
                and (self.kind is None or self.kind == kind)
                and (self.dst is None or self.dst == dst))


@guarded_by("_lock", "clock", "_due", "_drops", "_latencies", "stage_latency",
            "fired", "dropped", "corrupted", "_tuner_crashed",
            "_crashed_tuners", "injected_latency_s")
class FaultInjector:
    """Replays a fault schedule against an attached cluster.

    The clock is advanced from the fabric (caller thread) *and* from
    pipeline stage hooks (NPE worker threads), so all mutable schedule
    state is guarded by one reentrant lock — ``advance`` -> ``_fire_due``
    -> ``_fire`` -> ``_corrupt`` nest inside it.  Attachment wiring
    (``_stores``/``_fabrics``/``_pipelines``) is setup-time only and
    stays outside the guard.
    """

    def __init__(self, schedule: Sequence[FaultEvent] = ()):
        self._lock = threading.RLock()
        self._due = deque(sorted(schedule, key=lambda e: e.at))
        self.clock = 0
        self._stores: Dict[str, Any] = {}
        self._drops: List[_Budget] = []
        self._latencies: List[_Budget] = []
        self.stage_latency: Dict[str, float] = {}
        #: events that have fired, in firing order
        self.fired: List[FaultEvent] = []
        #: transfers swallowed by drop budgets (TransferRecord objects)
        self.dropped: List[Any] = []
        #: objects damaged by bit-rot / torn-write events:
        #: (store_id, key) in corruption order
        self.corrupted: List[Any] = []
        self._tuner_crashed = False
        #: node names of tuners downed by *targeted* TunerCrash events
        self._crashed_tuners: set = set()
        self.injected_latency_s = 0.0
        self._fabrics: List[Any] = []
        self._pipelines: List[Any] = []
        self._tuners: Dict[str, Any] = {}

    # -- wiring ------------------------------------------------------------
    def attach(self, cluster: Any) -> "FaultInjector":
        """Hook the whole runnable cluster (fabric + every PipeStore)."""
        for store in cluster.stores:
            self.register_store(store)
        tuner = getattr(cluster, "tuner", None)
        if tuner is not None:
            self.register_tuner(tuner)
        self.attach_fabric(cluster.network)
        return self

    def attach_fabric(self, fabric: Any) -> "FaultInjector":
        fabric.fault_filter = self.on_message
        self._fabrics.append(fabric)
        self._fire_due()
        return self

    def attach_pipeline(self, pipeline: Any) -> "FaultInjector":
        pipeline.stage_hook = self.on_stage_item
        self._pipelines.append(pipeline)
        return self

    def register_store(self, store: Any) -> "FaultInjector":
        self._stores[store.store_id] = store
        return self

    def register_tuner(self, tuner: Any) -> "FaultInjector":
        """Make a tuner addressable by targeted TunerCrash/TunerRecover."""
        self._tuners[tuner.name] = tuner
        return self

    def detach(self) -> None:
        """Unhook everything; pending events never fire."""
        for fabric in self._fabrics:
            # == not `is`: each attribute access builds a fresh bound method
            if fabric.fault_filter == self.on_message:
                fabric.fault_filter = None
        for pipeline in self._pipelines:
            if pipeline.stage_hook == self.on_stage_item:
                pipeline.stage_hook = None
        self._fabrics.clear()
        self._pipelines.clear()
        with self._lock:
            self._due.clear()
            self._drops.clear()
            self._latencies.clear()
            self._tuner_crashed = False
            self._crashed_tuners.clear()

    # -- the logical clock -------------------------------------------------
    def advance(self, ticks: int = 1) -> None:
        """Move the clock forward, firing every event that comes due."""
        with self._lock:
            for _ in range(ticks):
                self.clock += 1
                self._fire_due()

    def _fire_due(self) -> None:
        with self._lock:
            while self._due and self._due[0].at <= self.clock:
                self._fire(self._due.popleft())

    def _store(self, store_id: str) -> Any:
        try:
            return self._stores[store_id]
        except KeyError:
            raise FaultConfigError(
                f"schedule names unknown store {store_id!r}; registered: "
                f"{sorted(self._stores)}"
            ) from None

    def _fire(self, event: FaultEvent) -> None:
        with self._lock:
            if isinstance(event, StoreCrash):
                self._store(event.store_id).fail()
            elif isinstance(event, StoreRecover):
                self._store(event.store_id).repair()
            elif isinstance(event, SlowAccelerator):
                self._store(event.store_id).slowdown = event.factor
            elif isinstance(event, DropMessages):
                self._drops.append(_Budget(event.kind, event.count))
            elif isinstance(event, AddLatency):
                self._latencies.append(
                    _Budget(event.kind, event.count, event.seconds,
                            dst=event.dst))
            elif isinstance(event, SlowStage):
                self.stage_latency[event.stage] = event.seconds
            elif isinstance(event, (BitRot, TornWrite)):
                self._corrupt(event)
            elif isinstance(event, TunerCrash):
                if event.tuner_id is None:
                    # legacy global crash: every observed operation raises
                    self._tuner_crashed = True
                else:
                    self._crashed_tuners.add(event.tuner_id)
                    tuner = self._tuners.get(event.tuner_id)
                    if tuner is not None:
                        tuner.fail()
            elif isinstance(event, TunerRecover):
                if event.tuner_id is None:
                    self._tuner_crashed = False
                else:
                    self._crashed_tuners.discard(event.tuner_id)
                    tuner = self._tuners.get(event.tuner_id)
                    if tuner is not None:
                        tuner.repair()
            else:
                raise FaultConfigError(f"unknown fault event {event!r}")
            self.fired.append(event)

    def _corrupt(self, event) -> None:
        """Damage stored objects on one store without touching their CRCs."""
        objects = self._store(event.store_id).objects
        rng = np.random.default_rng(event.seed)
        if event.key is not None:
            if not objects.exists(event.key):
                raise FaultConfigError(
                    f"corruption event names missing object {event.key!r} "
                    f"on {event.store_id}"
                )
            victims = [event.key]
        else:
            pool = objects.keys(event.prefix)
            if not pool:
                return  # nothing stored yet: the rot has nothing to eat
            count = (event.num_objects if isinstance(event, BitRot) else 1)
            picks = rng.choice(len(pool), size=min(count, len(pool)),
                               replace=False)
            victims = [pool[int(i)] for i in sorted(picks)]
        for key in victims:
            blob = bytearray(objects.peek(key))
            if isinstance(event, BitRot):
                if not blob:
                    continue
                for _ in range(event.flips_per_object):
                    pos = int(rng.integers(0, len(blob)))
                    blob[pos] ^= 1 << int(rng.integers(0, 8))
            else:  # TornWrite
                blob = blob[:int(len(blob) * event.keep_fraction)]
            objects.corrupt_object(key, bytes(blob))
            with self._lock:
                self.corrupted.append((event.store_id, key))

    # -- hooks the system calls --------------------------------------------
    def on_message(self, record: Any) -> float:
        """Fabric filter: returns extra latency seconds or raises a drop."""
        self.advance()
        self._check_tuner_alive()
        with self._lock:
            if self._crashed_tuners and (record.src in self._crashed_tuners
                                         or record.dst in self._crashed_tuners):
                raise TunerCrashError(
                    f"injected tuner crash: {record.src} -> {record.dst} "
                    f"touches a downed tuner node"
                )
            for budget in self._drops:
                if budget.matches(record.kind):
                    budget.remaining -= 1
                    self.dropped.append(record)
                    raise MessageDroppedError(
                        f"injected drop: {record.src} -> {record.dst} "
                        f"({record.kind}, {record.num_bytes} B)"
                    )
            delay = 0.0
            for budget in self._latencies:
                if budget.matches(record.kind, record.dst):
                    budget.remaining -= 1
                    delay += budget.seconds
            self.injected_latency_s += delay
        return delay

    def on_stage_item(self, stage: str, item: Any) -> None:
        """ThreadedPipeline hook: slow a named stage per item."""
        self.advance()
        self._check_tuner_alive()
        with self._lock:
            delay = self.stage_latency.get(stage, 0.0)
        if delay > 0:
            # sleep outside the lock: a slowed stage must not stall the
            # fabric's clock advances on other threads
            time.sleep(delay)
            with self._lock:
                self.injected_latency_s += delay

    def _check_tuner_alive(self) -> None:
        with self._lock:
            crashed = self._tuner_crashed
        if crashed:
            raise TunerCrashError(
                "injected tuner crash: the process is gone until the "
                "operator restores from a checkpoint"
            )

    # -- introspection -----------------------------------------------------
    @property
    def tuner_crashed(self) -> bool:
        with self._lock:
            return self._tuner_crashed

    def crashed_tuners(self) -> List[str]:
        """Tuner node names currently downed by targeted crashes."""
        with self._lock:
            return sorted(self._crashed_tuners)

    @property
    def pending(self) -> List[FaultEvent]:
        with self._lock:
            return list(self._due)

    def crashed_stores(self) -> List[str]:
        return sorted(sid for sid, store in self._stores.items()
                      if not store.is_available)

    def describe(self) -> str:
        with self._lock:
            lines = [e.describe() for e in self.fired]
            lines += [f"(pending) {e.describe()}" for e in self._due]
        return "\n".join(lines) if lines else "(empty schedule)"

    # -- schedule generation -----------------------------------------------
    @staticmethod
    def random_schedule(store_ids: Sequence[str], horizon: int, seed: int,
                        num_events: Optional[int] = None,
                        max_concurrent_crashes: Optional[int] = None,
                        tuner_id: Optional[str] = None,
                        ) -> List[FaultEvent]:
        """A seeded random crash/recover/drop/latency/slowdown schedule.

        Deterministic for a given ``(store_ids, horizon, seed)``.  At most
        ``max_concurrent_crashes`` stores (default: all but one) are ever
        down at once, so ingest always has somewhere to land, and every
        generated crash is paired with a recover inside ``horizon`` or
        left down for the test to repair explicitly.  Drop bursts are
        capped at 2 so the default :class:`RetryPolicy` can absorb them.

        With ``tuner_id`` set, a ~15% band of events becomes paired
        targeted :class:`TunerCrash`/:class:`TunerRecover` events (at
        most one tuner outage outstanding, always recovered inside the
        horizon) so chaos suites exercise failover.  The default
        ``tuner_id=None`` draws the exact same RNG sequence as before,
        keeping historical seeded schedules byte-identical.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        if not store_ids:
            raise ValueError("need at least one store id")
        rng = np.random.default_rng(seed)
        if num_events is None:
            num_events = int(rng.integers(3, 9))
        if max_concurrent_crashes is None:
            max_concurrent_crashes = max(0, len(store_ids) - 1)

        events: List[FaultEvent] = []
        # down intervals [start, end) per generated crash, end = inf when
        # the crash outlives the schedule (the test repairs it explicitly)
        intervals: List = []  # (start, end, store_id)

        def overlaps(start: int, end: float, store: Optional[str]) -> int:
            return sum(1 for a, b, s in intervals
                       if a < end and start < b
                       and (store is None or s == store))

        # down intervals for the (single) targeted tuner, same pairing rule
        tuner_intervals: List = []  # (start, end)

        for _ in range(num_events):
            tick = int(rng.integers(1, horizon + 1))
            # extra draw happens only when tuner events are requested, so
            # the default RNG sequence (and schedules) stay byte-identical
            if tuner_id is not None and rng.random() < 0.15:
                end_t = tick + int(rng.integers(1, horizon // 3 + 2))
                if any(a < end_t and tick < b for a, b in tuner_intervals):
                    continue  # at most one tuner outage outstanding
                events.append(TunerCrash(at=tick, tuner_id=tuner_id))
                events.append(TunerRecover(at=int(end_t), tuner_id=tuner_id))
                tuner_intervals.append((tick, end_t))
                continue
            roll = rng.random()
            if roll < 0.40:
                if rng.random() < 0.7:  # usually recovers inside the run
                    end: float = tick + int(rng.integers(1, horizon // 2 + 2))
                else:
                    end = float("inf")
                up = [s for s in store_ids if overlaps(tick, end, s) == 0]
                # conservative: count every interval touching [tick, end)
                # as concurrent, so the constraint can never be violated
                if not up or overlaps(tick, end, None) >= max_concurrent_crashes:
                    continue
                victim = str(rng.choice(up))
                events.append(StoreCrash(at=tick, store_id=victim))
                if end != float("inf"):
                    events.append(StoreRecover(at=int(end), store_id=victim))
                intervals.append((tick, end, victim))
            elif roll < 0.60:
                events.append(DropMessages(
                    at=tick, count=int(rng.integers(1, 3)), kind=None))
            elif roll < 0.80:
                events.append(AddLatency(
                    at=tick, seconds=float(rng.uniform(0.001, 0.05)),
                    count=int(rng.integers(1, 4)), kind=None))
            else:
                victim = str(rng.choice(list(store_ids)))
                events.append(SlowAccelerator(
                    at=tick, store_id=victim,
                    factor=float(rng.uniform(1.5, 4.0))))
        return sorted(events, key=lambda e: e.at)
