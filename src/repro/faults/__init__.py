"""``repro.faults`` — deterministic fault injection and retry policy.

The fleet half of the NDPipe story (§4, Fig. 7) only matters if it
survives the fleet misbehaving.  This package provides the *injection*
side — a seedable :class:`FaultInjector` replaying scheduled crashes,
message drops, latency, accelerator slowdowns, silent storage corruption
(bit rot, torn writes), and Tuner crashes through hooks in the fabric,
the PipeStores, and the NPE pipeline — while the *tolerance* side
(retry-with-backoff dispatch, degraded-mode FT-DMP, orphan re-ingest,
scrub-and-repair, checkpoint/resume) lives in :mod:`repro.core` and
:mod:`repro.durability`.  The chaos suites under ``tests/faults/`` and
``tests/durability/`` drive both.
"""

from .errors import (
    FaultConfigError,
    FaultError,
    MessageDroppedError,
    StaleEpochError,
    TransientFaultError,
    TunerCrashError,
)
from .events import (
    AddLatency,
    BitRot,
    DropMessages,
    FaultEvent,
    SlowAccelerator,
    SlowStage,
    StoreCrash,
    StoreRecover,
    TornWrite,
    TunerCrash,
    TunerRecover,
)
from .retry import RetryPolicy, call_with_retry
from .injector import FaultInjector

__all__ = [
    "FaultError", "FaultConfigError", "TransientFaultError",
    "MessageDroppedError", "TunerCrashError", "StaleEpochError",
    "FaultEvent", "StoreCrash", "StoreRecover", "DropMessages",
    "AddLatency", "SlowAccelerator", "SlowStage",
    "BitRot", "TornWrite", "TunerCrash", "TunerRecover",
    "RetryPolicy", "call_with_retry",
    "FaultInjector",
]
