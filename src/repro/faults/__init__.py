"""``repro.faults`` — deterministic fault injection and retry policy.

The fleet half of the NDPipe story (§4, Fig. 7) only matters if it
survives the fleet misbehaving.  This package provides the *injection*
side — a seedable :class:`FaultInjector` replaying scheduled crashes,
message drops, latency, and accelerator slowdowns through hooks in the
fabric, the PipeStores, and the NPE pipeline — while the *tolerance* side
(retry-with-backoff dispatch, degraded-mode FT-DMP, orphan re-ingest)
lives in :mod:`repro.core`.  The chaos suite under ``tests/faults/``
drives both.
"""

from .errors import (
    FaultConfigError,
    FaultError,
    MessageDroppedError,
    TransientFaultError,
)
from .events import (
    AddLatency,
    DropMessages,
    FaultEvent,
    SlowAccelerator,
    SlowStage,
    StoreCrash,
    StoreRecover,
)
from .retry import RetryPolicy, call_with_retry
from .injector import FaultInjector

__all__ = [
    "FaultError", "FaultConfigError", "TransientFaultError",
    "MessageDroppedError",
    "FaultEvent", "StoreCrash", "StoreRecover", "DropMessages",
    "AddLatency", "SlowAccelerator", "SlowStage",
    "RetryPolicy", "call_with_retry",
    "FaultInjector",
]
