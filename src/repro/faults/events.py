"""The fault vocabulary: scheduled events the injector can fire.

Events are pinned to a *logical tick*: the injector's clock advances once
per observed operation (every fabric transfer, every pipeline stage item),
so a schedule is deterministic regardless of wall-clock timing — the same
schedule against the same workload always crashes the same store between
the same two messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FaultEvent:
    """Base event: fires when the injector clock reaches ``at``."""

    at: int

    def describe(self) -> str:
        return f"t={self.at} {type(self).__name__}"


@dataclass(frozen=True)
class StoreCrash(FaultEvent):
    """Take one PipeStore down (its storage survives for a later repair)."""

    store_id: str

    def describe(self) -> str:
        return f"t={self.at} crash {self.store_id}"


@dataclass(frozen=True)
class StoreRecover(FaultEvent):
    """Bring a crashed PipeStore back into service."""

    store_id: str

    def describe(self) -> str:
        return f"t={self.at} recover {self.store_id}"


@dataclass(frozen=True)
class DropMessages(FaultEvent):
    """Swallow the next ``count`` fabric transfers (optionally one kind)."""

    count: int = 1
    kind: Optional[str] = None  # None matches any traffic kind

    def describe(self) -> str:
        what = self.kind or "any"
        return f"t={self.at} drop {self.count}x {what}"


@dataclass(frozen=True)
class AddLatency(FaultEvent):
    """Charge extra wire seconds to the next ``count`` matching transfers."""

    seconds: float = 0.0
    count: int = 1
    kind: Optional[str] = None

    def describe(self) -> str:
        what = self.kind or "any"
        return f"t={self.at} +{self.seconds:g}s on {self.count}x {what}"


@dataclass(frozen=True)
class SlowAccelerator(FaultEvent):
    """Degrade one store's accelerator by ``factor`` (1.0 = healthy)."""

    store_id: str = ""
    factor: float = 1.0

    def describe(self) -> str:
        return f"t={self.at} slow {self.store_id} x{self.factor:g}"


@dataclass(frozen=True)
class SlowStage(FaultEvent):
    """Add per-item seconds to one named :class:`ThreadedPipeline` stage."""

    stage: str = ""
    seconds: float = 0.0

    def describe(self) -> str:
        return f"t={self.at} stage {self.stage} +{self.seconds:g}s/item"
