"""The fault vocabulary: scheduled events the injector can fire.

Events are pinned to a *logical tick*: the injector's clock advances once
per observed operation (every fabric transfer, every pipeline stage item),
so a schedule is deterministic regardless of wall-clock timing — the same
schedule against the same workload always crashes the same store between
the same two messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class FaultEvent:
    """Base event: fires when the injector clock reaches ``at``."""

    at: int

    def describe(self) -> str:
        return f"t={self.at} {type(self).__name__}"


@dataclass(frozen=True)
class StoreCrash(FaultEvent):
    """Take one PipeStore down (its storage survives for a later repair)."""

    store_id: str

    def describe(self) -> str:
        return f"t={self.at} crash {self.store_id}"


@dataclass(frozen=True)
class StoreRecover(FaultEvent):
    """Bring a crashed PipeStore back into service."""

    store_id: str

    def describe(self) -> str:
        return f"t={self.at} recover {self.store_id}"


@dataclass(frozen=True)
class DropMessages(FaultEvent):
    """Swallow the next ``count`` fabric transfers (optionally one kind)."""

    count: int = 1
    kind: Optional[str] = None  # None matches any traffic kind

    def describe(self) -> str:
        what = self.kind or "any"
        return f"t={self.at} drop {self.count}x {what}"


@dataclass(frozen=True)
class AddLatency(FaultEvent):
    """Charge extra wire seconds to the next ``count`` matching transfers.

    ``dst`` narrows the budget to transfers landing on one node — the
    way to model a single store whose network link has gone slow (the
    load-aware placement tests pin a latency budget to one PipeStore and
    assert fresh ingest routes around it).
    """

    seconds: float = 0.0
    count: int = 1
    kind: Optional[str] = None
    dst: Optional[str] = None  # None matches any destination node

    def describe(self) -> str:
        what = self.kind or "any"
        where = f" -> {self.dst}" if self.dst else ""
        return f"t={self.at} +{self.seconds:g}s on {self.count}x {what}{where}"


@dataclass(frozen=True)
class SlowAccelerator(FaultEvent):
    """Degrade one store's accelerator by ``factor`` (1.0 = healthy)."""

    store_id: str = ""
    factor: float = 1.0

    def describe(self) -> str:
        return f"t={self.at} slow {self.store_id} x{self.factor:g}"


@dataclass(frozen=True)
class SlowStage(FaultEvent):
    """Add per-item seconds to one named :class:`ThreadedPipeline` stage."""

    stage: str = ""
    seconds: float = 0.0

    def describe(self) -> str:
        return f"t={self.at} stage {self.stage} +{self.seconds:g}s/item"


@dataclass(frozen=True)
class BitRot(FaultEvent):
    """Silently flip bits in stored objects on one PipeStore.

    Models media decay on the st1 arrays: the bytes change under the
    store's feet while its write-time CRC32 stays stale, so the damage is
    invisible until a verified read or a ``scrub()`` pass.  Victim
    objects are chosen deterministically by ``seed`` among keys matching
    ``prefix`` (or pinned with an explicit ``key``).
    """

    store_id: str = ""
    key: Optional[str] = None  # explicit victim; else a seeded pick
    num_objects: int = 1
    flips_per_object: int = 8
    prefix: str = ""  # restrict seeded picks to one namespace
    seed: int = 0

    def describe(self) -> str:
        what = self.key or f"{self.num_objects}x {self.prefix or 'any'}"
        return f"t={self.at} bit-rot {self.store_id}:{what}"


@dataclass(frozen=True)
class TornWrite(FaultEvent):
    """Truncate one stored object mid-blob (a partial write that stuck).

    The object keeps its key but only ``keep_fraction`` of its bytes;
    the stale CRC32 makes the tear detectable exactly like bit rot.
    """

    store_id: str = ""
    key: Optional[str] = None
    keep_fraction: float = 0.5
    prefix: str = ""
    seed: int = 0

    def describe(self) -> str:
        what = self.key or (self.prefix or "any")
        return (f"t={self.at} torn-write {self.store_id}:{what} "
                f"keep={self.keep_fraction:g}")


@dataclass(frozen=True)
class TunerCrash(FaultEvent):
    """Kill a Tuner process.

    With the legacy ``tuner_id=None`` form every subsequent observed
    operation raises :class:`~repro.faults.errors.TunerCrashError`
    until the injector is detached — recovery means restoring from a
    checkpoint.  With an explicit ``tuner_id`` the crash is *targeted*:
    only fabric traffic to or from that node raises, the registered
    tuner object is failed (its heartbeats stop), and the rest of the
    cluster keeps running — which is what lets the HA layer fail over
    to a warm standby while the primary is down.
    """

    tuner_id: Optional[str] = None

    def describe(self) -> str:
        who = self.tuner_id or "tuner (global)"
        return f"t={self.at} tuner crash {who}"


@dataclass(frozen=True)
class TunerRecover(FaultEvent):
    """Bring a crashed Tuner process back (the split-brain scenario).

    A revived Tuner still holds the epoch it crashed with; if the HA
    layer promoted a standby in the meantime, every update the zombie
    distributes is rejected by epoch fencing.  ``tuner_id=None``
    clears the legacy global crash flag.
    """

    tuner_id: Optional[str] = None

    def describe(self) -> str:
        who = self.tuner_id or "tuner (global)"
        return f"t={self.at} tuner recover {who}"
