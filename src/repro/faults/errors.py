"""Exception taxonomy for injected faults.

Kept dependency-free so both ``repro.core`` (which raises them from the
fabric) and ``repro.faults`` (which injects them) can import this module
without creating a package cycle.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for everything the fault subsystem raises."""


class FaultConfigError(FaultError):
    """A fault schedule references something that does not exist."""


class TransientFaultError(FaultError):
    """A fault the caller is expected to survive by retrying.

    Retry helpers (:mod:`repro.faults.retry`) treat subclasses of this as
    retryable by default; anything else propagates immediately.
    """


class MessageDroppedError(TransientFaultError):
    """An injected network fault swallowed one fabric transfer."""
