"""Exception taxonomy for injected faults.

Kept dependency-free so both ``repro.core`` (which raises them from the
fabric) and ``repro.faults`` (which injects them) can import this module
without creating a package cycle.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for everything the fault subsystem raises."""


class FaultConfigError(FaultError):
    """A fault schedule references something that does not exist."""


class TransientFaultError(FaultError):
    """A fault the caller is expected to survive by retrying.

    Retry helpers (:mod:`repro.faults.retry`) treat subclasses of this as
    retryable by default; anything else propagates immediately.
    """


class MessageDroppedError(TransientFaultError):
    """An injected network fault swallowed one fabric transfer."""


class TunerCrashError(FaultError):
    """The Tuner process died mid-lifecycle (fault injection).

    Deliberately *not* transient: no retry policy can bring a dead
    process back.  The operator restores the cluster from its latest
    checkpoint and resumes from the last completed run.
    """
