"""Exception taxonomy for injected faults.

Kept dependency-free so both ``repro.core`` (which raises them from the
fabric) and ``repro.faults`` (which injects them) can import this module
without creating a package cycle.
"""

from __future__ import annotations


class FaultError(RuntimeError):
    """Base class for everything the fault subsystem raises."""


class FaultConfigError(FaultError):
    """A fault schedule references something that does not exist."""


class TransientFaultError(FaultError):
    """A fault the caller is expected to survive by retrying.

    Retry helpers (:mod:`repro.faults.retry`) treat subclasses of this as
    retryable by default; anything else propagates immediately.
    """


class MessageDroppedError(TransientFaultError):
    """An injected network fault swallowed one fabric transfer."""


class TunerCrashError(FaultError):
    """The Tuner process died mid-lifecycle (fault injection).

    Deliberately *not* transient: no retry policy can bring a dead
    process back.  The operator restores the cluster from its latest
    checkpoint and resumes from the last completed run — or, with the
    HA layer enabled (:mod:`repro.ha`), the failure detector promotes
    the warm standby automatically.
    """


class StaleEpochError(FaultError):
    """A fenced component rejected an update stamped with an old epoch.

    Raised by a :class:`~repro.core.pipestore.PipeStore` when a model
    update (Check-N-Run delta or full resync) arrives carrying an epoch
    older than the highest epoch the store has already accepted.  This
    is the split-brain guard: a deposed primary Tuner that comes back
    from the dead cannot corrupt replicas the new primary owns.

    Deliberately *not* transient: retrying a fenced update can never
    succeed — the sender must observe the new epoch (i.e. stand down).
    """
