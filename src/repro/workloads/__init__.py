"""``repro.workloads`` — evaluation-scenario generators."""

from .continuous import DayRecord, OperationLog, run_continuous_operation
from .scenarios import (
    DriftPoint,
    DriftScenarioConfig,
    DriftScenarioResult,
    evaluate_model,
    run_drift_scenario,
    train_base_model,
    uploads_for_day,
)

__all__ = [
    "run_continuous_operation", "OperationLog", "DayRecord",
    "DriftScenarioConfig", "DriftScenarioResult", "DriftPoint",
    "run_drift_scenario", "train_base_model", "evaluate_model",
    "uploads_for_day",
]
