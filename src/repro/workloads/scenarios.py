"""Workload generators for the paper's evaluation scenarios.

The central one is the two-week drift scenario of §3.2 / §6.3: a base
model is trained on day 0; images accumulate at 1.78 %/day with 5.3 % of
new uploads in new categories; the model is evaluated every other day
against fresh test sets, optionally fine-tuned or fully retrained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.ftdmp import FTDMPTrainer
from ..data.drift import DriftingPhotoWorld
from ..data.loader import normalize_images
from ..models.split import SplitModel
from ..nn.losses import accuracy, topk_accuracy
from ..nn.tensor import Tensor
from ..train.fulltrain import full_train


@dataclass
class DriftPoint:
    """Model quality measured on one evaluation day."""

    day: int
    top1: float
    top5: float


@dataclass
class DriftScenarioResult:
    """Accuracy trajectories of the §3.2 strategies over two weeks."""

    strategy: str
    points: List[DriftPoint] = field(default_factory=list)

    @property
    def final_top1(self) -> float:
        return self.points[-1].top1

    @property
    def drop_from_base(self) -> float:
        return self.points[0].top1 - self.points[-1].top1


def evaluate_model(model: SplitModel, x: np.ndarray, y: np.ndarray,
                   batch_size: int = 256) -> Tuple[float, float]:
    """(top-1, top-5) of a model on raw [0, 1] images."""
    was_training = model.training
    model.eval()
    logits = []
    normed = normalize_images(x)
    for start in range(0, len(x), batch_size):
        logits.append(model(Tensor(normed[start:start + batch_size])).data)
    model.train(was_training)
    stacked = np.concatenate(logits, axis=0)
    return accuracy(stacked, y), topk_accuracy(stacked, y, k=5)


@dataclass(frozen=True)
class DriftScenarioConfig:
    """Scale knobs for the two-week drift study."""

    horizon_days: int = 14
    eval_every_days: int = 2
    train_size: int = 1200
    test_size: int = 600
    base_epochs: int = 6
    finetune_epochs: int = 3
    finetune_size: int = 600
    lr: float = 3e-3
    seed: int = 0


def run_drift_scenario(world: DriftingPhotoWorld,
                       model_factory: Callable[[], SplitModel],
                       strategy: str,
                       config: DriftScenarioConfig = DriftScenarioConfig(),
                       base_model: Optional[SplitModel] = None,
                       ) -> DriftScenarioResult:
    """Run one maintenance strategy over the drift horizon.

    ``strategy``:

    * ``"outdated"`` — train once on day 0, never update;
    * ``"finetune"`` — fine-tune the classifier on recent images at every
      evaluation day (the NDPipe strategy);
    * ``"full"`` — retrain from scratch on the latest data at every
      evaluation day (the infeasible gold standard).
    """
    if strategy not in ("outdated", "finetune", "full"):
        raise ValueError(f"unknown strategy {strategy!r}")
    rng = np.random.default_rng(config.seed)

    model = base_model if base_model is not None else train_base_model(
        world, model_factory, config
    )
    trainer: Optional[FTDMPTrainer] = None
    if strategy == "finetune":
        trainer = FTDMPTrainer(model, lr=config.lr, seed=config.seed)

    result = DriftScenarioResult(strategy=strategy)
    for day in range(0, config.horizon_days + 1, config.eval_every_days):
        if day > 0 and strategy == "finetune":
            x_new, y_new = world.sample(config.finetune_size, day, rng=rng)
            trainer.finetune(normalize_images(x_new), y_new,
                             epochs=config.finetune_epochs)
        elif day > 0 and strategy == "full":
            model = model_factory()
            # cumulative historical + recent data (§2.2): the expensive
            # gold standard trains on everything accumulated so far
            xs, ys = [], []
            sample_days = np.unique(np.linspace(0, day, 3).astype(int))
            per_day = max(int(config.train_size * 1.5) // len(sample_days),
                          16)
            for offset, d in enumerate(sample_days):
                x_d, y_d = world.sample(
                    per_day, int(d),
                    rng=np.random.default_rng(config.seed + 500 + day + offset),
                )
                xs.append(x_d)
                ys.append(y_d)
            full_train(model, normalize_images(np.concatenate(xs)),
                       np.concatenate(ys), epochs=config.base_epochs + 2,
                       lr=config.lr, seed=config.seed)
        x_test, y_test = world.sample(
            config.test_size, day, rng=np.random.default_rng(config.seed + day)
        )
        top1, top5 = evaluate_model(model, x_test, y_test)
        result.points.append(DriftPoint(day=day, top1=top1, top5=top5))
    return result


def train_base_model(world: DriftingPhotoWorld,
                     model_factory: Callable[[], SplitModel],
                     config: DriftScenarioConfig = DriftScenarioConfig(),
                     ) -> SplitModel:
    """Train the day-0 base model (only the initially available classes)."""
    model = model_factory()
    x, y = world.sample(config.train_size, 0,
                        rng=np.random.default_rng(config.seed + 77))
    full_train(model, normalize_images(x), y, epochs=config.base_epochs,
               lr=config.lr, seed=config.seed)
    return model


def uploads_for_day(world: DriftingPhotoWorld, day: int, base_uploads: int,
                    rng: Optional[np.random.Generator] = None,
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """One day's worth of uploads, sized by the growth model."""
    total_today = world.dataset_size_at(day, base_uploads)
    total_yesterday = world.dataset_size_at(day - 1, base_uploads) if day else 0
    count = max(total_today - total_yesterday, 1)
    return world.sample(count, day, rng=rng)
