"""Continuous operation: the photo service's day-by-day production loop.

Ties the whole system together the way §3.1's production deployment runs:
every day new photos arrive and are labelled online; a maintenance policy
(scheduled or drift-triggered, §2.2) decides when to fine-tune; each
fine-tune is followed by a near-data offline-relabel campaign so the
database catches up with the refreshed model.  The log records accuracy,
label freshness, update counts, and network traffic per day.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..core.cluster import NDPipeCluster
from ..core.driftdetect import MaintenancePolicy
from ..data.drift import DriftingPhotoWorld
from ..serving.admission import ServeRequest


@dataclass
class DayRecord:
    """What happened on one operational day."""

    day: int
    uploads: int
    top1: float
    top5: float
    fine_tuned: bool
    labels_refreshed: int
    #: photos whose DB label predates the current model version (end of day)
    stale_labels: int


@dataclass
class OperationLog:
    """The full continuous-operation trace."""

    policy: str
    days: List[DayRecord] = field(default_factory=list)
    traffic_by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def updates(self) -> int:
        return sum(1 for d in self.days if d.fine_tuned)

    @property
    def mean_top1(self) -> float:
        if not self.days:
            raise ValueError("no days recorded")
        return float(np.mean([d.top1 for d in self.days]))

    @property
    def final_stale_labels(self) -> int:
        return self.days[-1].stale_labels


def open_loop_requests(num_requests: int, rate_rps: float, seed: int = 0,
                       pool_size: int = 64, skew: float = 1.1,
                       image_size: int = 16, channels: int = 3,
                       pool_seed: int = 1234) -> List[ServeRequest]:
    """Open-loop Poisson upload traffic for the serving layer.

    Arrivals are a Poisson process at ``rate_rps`` (seeded exponential
    inter-arrival times on the deterministic clock — the generator never
    waits for the server, which is what makes the load *offered* rather
    than closed-loop).  Photo content is drawn from a finite pool of
    ``pool_size`` distinct images with a Zipf-like popularity skew
    (probability of rank ``r`` proportional to ``1 / r**skew``), the way
    a photo service sees repeated uploads of popular content — and what
    gives the preprocessed-tensor cache hits to work with.

    The pool is generated from ``pool_seed``, *separately* from the
    arrival-process ``seed``: two traces with different seeds offer the
    same photo population in a different order, so cache behaviour is
    comparable across seeds.  Each request's ``train_label`` is a
    deterministic function of its pool image.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    if pool_size < 1:
        raise ValueError(f"pool_size must be >= 1, got {pool_size}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    pool_rng = np.random.default_rng(pool_seed)
    pool = pool_rng.random((pool_size, channels, image_size, image_size))
    weights = 1.0 / np.arange(1, pool_size + 1) ** skew
    probabilities = weights / weights.sum()
    rng = np.random.default_rng(seed)
    arrival_s = 0.0
    requests: List[ServeRequest] = []
    for i in range(num_requests):
        arrival_s += float(rng.exponential(1.0 / rate_rps))
        rank = int(rng.choice(pool_size, p=probabilities))
        requests.append(ServeRequest(
            request_id=f"req-{i:06d}",
            arrival_s=arrival_s,
            pixels=pool[rank],
            train_label=rank % 10,
        ))
    return requests


def _zipf_pool(pool_size: int, skew: float, image_size: int, channels: int,
               pool_seed: int):
    """The shared photo population: pool tensor + popularity weights."""
    if pool_size < 1:
        raise ValueError(f"pool_size must be >= 1, got {pool_size}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    pool_rng = np.random.default_rng(pool_seed)
    pool = pool_rng.random((pool_size, channels, image_size, image_size))
    weights = 1.0 / np.arange(1, pool_size + 1) ** skew
    return pool, weights / weights.sum()


def _rate_modulated_requests(num_requests: int,
                             rate_fn: Callable[[float], float],
                             max_rate_rps: float, seed: int,
                             pool_size: int, skew: float, image_size: int,
                             channels: int, pool_seed: int,
                             id_prefix: str) -> List[ServeRequest]:
    """Nonhomogeneous Poisson arrivals by thinning (Lewis–Shedler).

    Candidate arrivals are drawn at the envelope ``max_rate_rps`` and
    kept with probability ``rate_fn(t) / max_rate_rps`` — the standard
    exact sampler for a time-varying Poisson process.  Pool convention
    matches :func:`open_loop_requests` (separate ``pool_seed``, Zipf
    popularity), so all trace shapes offer the same photo population.
    """
    if num_requests < 1:
        raise ValueError(f"num_requests must be >= 1, got {num_requests}")
    if max_rate_rps <= 0:
        raise ValueError(f"max_rate_rps must be > 0, got {max_rate_rps}")
    pool, probabilities = _zipf_pool(pool_size, skew, image_size, channels,
                                     pool_seed)
    rng = np.random.default_rng(seed)
    requests: List[ServeRequest] = []
    t = 0.0
    while len(requests) < num_requests:
        t += float(rng.exponential(1.0 / max_rate_rps))
        rate = rate_fn(t)
        if not 0.0 <= rate <= max_rate_rps:
            raise ValueError(
                f"rate_fn({t}) = {rate} outside [0, {max_rate_rps}]")
        if rng.random() >= rate / max_rate_rps:
            continue
        rank = int(rng.choice(pool_size, p=probabilities))
        requests.append(ServeRequest(
            request_id=f"{id_prefix}-{len(requests):06d}",
            arrival_s=t,
            pixels=pool[rank],
            train_label=rank % 10,
        ))
    return requests


def diurnal_requests(num_requests: int, base_rps: float, peak_rps: float,
                     period_s: float, seed: int = 0, pool_size: int = 64,
                     skew: float = 1.1, image_size: int = 16,
                     channels: int = 3, pool_seed: int = 1234,
                     ) -> List[ServeRequest]:
    """A day-night cycle: sinusoidal rate from ``base_rps`` (trough, at
    t=0) up to ``peak_rps`` (mid-period) with period ``period_s``.  Use a
    short ``period_s`` to compress a simulated day into bench time."""
    if base_rps <= 0 or peak_rps < base_rps:
        raise ValueError(
            f"need 0 < base_rps <= peak_rps, got {base_rps}, {peak_rps}")
    if period_s <= 0:
        raise ValueError(f"period_s must be > 0, got {period_s}")

    def rate(t: float) -> float:
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t / period_s))
        return base_rps + (peak_rps - base_rps) * phase

    return _rate_modulated_requests(
        num_requests, rate, peak_rps, seed, pool_size, skew, image_size,
        channels, pool_seed, id_prefix="diurnal")


def flash_crowd_requests(num_requests: int, base_rps: float,
                         flash_rps: float, flash_start_s: float,
                         flash_duration_s: float, seed: int = 0,
                         pool_size: int = 64, skew: float = 1.1,
                         image_size: int = 16, channels: int = 3,
                         pool_seed: int = 1234) -> List[ServeRequest]:
    """A viral burst: steady ``base_rps`` except for a window of
    ``flash_rps`` starting at ``flash_start_s`` — the trace that sheds on
    a hard-bounded queue and merely delays under backpressure credits."""
    if base_rps <= 0 or flash_rps < base_rps:
        raise ValueError(
            f"need 0 < base_rps <= flash_rps, got {base_rps}, {flash_rps}")
    if flash_start_s < 0 or flash_duration_s <= 0:
        raise ValueError("flash window must start >= 0 and last > 0 seconds")

    def rate(t: float) -> float:
        if flash_start_s <= t < flash_start_s + flash_duration_s:
            return flash_rps
        return base_rps

    return _rate_modulated_requests(
        num_requests, rate, flash_rps, seed, pool_size, skew, image_size,
        channels, pool_seed, id_prefix="flash")


@dataclass(frozen=True)
class TenantUpload:
    """One upload event in a multi-tenant trace."""

    tenant: str
    user_id: int
    photo_id: str


@dataclass
class MultiTenantTrace:
    """A population-scale multi-tenant upload trace, held as arrays.

    A million events live as three numpy arrays (tenant index, user
    rank, sequence number) rather than a million Python objects;
    :meth:`photo_ids` and :meth:`__iter__` materialise views on demand.
    Photo ids are tenant-qualified (``tenant/u<user>/p<seq>``) in the
    same namespace convention :class:`~repro.placement.tenants.
    TenantNamespace` uses, so they feed straight into ring placement.
    """

    tenants: List[str]
    tenant_idx: np.ndarray  # (N,) int — index into tenants
    user_ids: np.ndarray    # (N,) int — Zipf-popular user ranks
    num_users: int
    skew: float
    seed: int

    def __len__(self) -> int:
        return len(self.tenant_idx)

    def upload(self, i: int) -> TenantUpload:
        tenant = self.tenants[int(self.tenant_idx[i])]
        user = int(self.user_ids[i])
        return TenantUpload(
            tenant=tenant, user_id=user,
            photo_id=f"{tenant}/u{user:07d}/p{i:08d}")

    def __iter__(self):
        for i in range(len(self)):
            yield self.upload(i)

    def photo_ids(self) -> List[str]:
        """All tenant-qualified ids, in arrival order (vectorised)."""
        names = np.asarray(self.tenants, dtype=object)[self.tenant_idx]
        return [f"{t}/u{u:07d}/p{i:08d}"
                for i, (t, u) in enumerate(zip(names, self.user_ids))]

    def tenant_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.tenant_idx, minlength=len(self.tenants))
        return {t: int(c) for t, c in zip(self.tenants, counts)}

    def distinct_users(self) -> int:
        return int(np.unique(self.user_ids).size)


def multi_tenant_trace(num_uploads: int, tenants: Dict[str, float],
                       num_users: int = 1_000_000, skew: float = 1.1,
                       seed: int = 0) -> MultiTenantTrace:
    """Sample a multi-tenant upload trace over a Zipf user population.

    ``tenants`` maps tenant name -> relative traffic weight.  Each upload
    first picks a tenant by weight, then a user by Zipf popularity
    (probability of rank ``r`` proportional to ``1 / r**skew``) over a
    ``num_users``-strong population — both draws are vectorised
    inverse-CDF lookups, so a ~1M-user trace costs two ``searchsorted``
    calls, not a million RNG round-trips.
    """
    if num_uploads < 1:
        raise ValueError(f"num_uploads must be >= 1, got {num_uploads}")
    if num_users < 1:
        raise ValueError(f"num_users must be >= 1, got {num_users}")
    if skew < 0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    if not tenants:
        raise ValueError("need at least one tenant")
    names = sorted(tenants)
    weights = np.array([tenants[n] for n in names], dtype=np.float64)
    if (weights <= 0).any():
        raise ValueError(f"tenant weights must be > 0, got {tenants}")
    rng = np.random.default_rng(seed)
    tenant_cdf = np.cumsum(weights)
    tenant_cdf /= tenant_cdf[-1]
    tenant_idx = np.searchsorted(
        tenant_cdf, rng.random(num_uploads), side="right")
    user_weights = 1.0 / np.arange(1, num_users + 1, dtype=np.float64) ** skew
    user_cdf = np.cumsum(user_weights)
    user_cdf /= user_cdf[-1]
    user_ids = np.searchsorted(
        user_cdf, rng.random(num_uploads), side="right")
    return MultiTenantTrace(
        tenants=names, tenant_idx=tenant_idx.astype(np.int64),
        user_ids=user_ids.astype(np.int64),
        num_users=num_users, skew=skew, seed=seed)


def run_continuous_operation(cluster: NDPipeCluster,
                             world: DriftingPhotoWorld,
                             policy: MaintenancePolicy,
                             horizon_days: int = 14,
                             uploads_per_day: int = 40,
                             eval_size: int = 120,
                             finetune_epochs: int = 2,
                             num_runs: int = 1,
                             relabel_after_update: bool = True,
                             seed: int = 0) -> OperationLog:
    """Drive the cluster through ``horizon_days`` of drifting uploads.

    The cluster's model should already be base-trained (uploads carry
    ground-truth training labels, standing in for user tags).  Returns the
    per-day operation log.
    """
    if horizon_days < 1:
        raise ValueError("horizon_days must be >= 1")
    if uploads_per_day < 1:
        raise ValueError("uploads_per_day must be >= 1")
    log = OperationLog(policy=policy.name)
    upload_rng = np.random.default_rng(seed + 1)

    for day in range(1, horizon_days + 1):
        x_up, y_up = world.sample(uploads_per_day, day, rng=upload_rng)
        cluster.ingest(x_up, train_labels=y_up)

        x_eval, y_eval = world.sample(
            eval_size, day, rng=np.random.default_rng(seed + 100 + day))
        top1, top5 = cluster.evaluate(x_eval, y_eval)

        fine_tuned = False
        labels_refreshed = 0
        if policy.should_update(day, top1):
            cluster.finetune(epochs=finetune_epochs, num_runs=num_runs)
            policy.notify_updated(day)
            fine_tuned = True
            if relabel_after_update:
                labels_refreshed = cluster.offline_relabel().photos_processed
            top1, top5 = cluster.evaluate(x_eval, y_eval)

        stale = len(cluster.database.outdated_ids(cluster.tuner.version))
        log.days.append(DayRecord(
            day=day, uploads=uploads_per_day, top1=top1, top5=top5,
            fine_tuned=fine_tuned, labels_refreshed=labels_refreshed,
            stale_labels=stale,
        ))
    log.traffic_by_kind = cluster.traffic_summary()
    return log
