"""Tuner — the fine-tuning server orchestrating PipeStores (§5).

The Tuner owns the authoritative model, triggers near-data jobs, trains
the trainable tail on features streamed back by PipeStores, and
redistributes updates as Check-N-Run deltas.  All weight updates are local
to the Tuner, so FT-DMP needs no cross-store synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.loader import batch_iter
from ..models.graph import FEATURE_DTYPE_BYTES
from ..models.split import SplitModel
from ..nn.losses import cross_entropy
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from . import checknrun
from .fabric import NetworkFabric
from .ftdmp import EpochRecord, FinetuneReport
from .pipestore import PipeStore, StoreUnavailableError


@dataclass
class DistributionStats:
    """One model-distribution round across the fleet."""

    version: int
    full_model_bytes: int
    bytes_per_store: int
    used_delta: bool

    @property
    def reduction_factor(self) -> float:
        if self.bytes_per_store == 0:
            raise ValueError("no bytes distributed")
        return self.full_model_bytes / self.bytes_per_store


class Tuner:
    """The training server of NDPipe."""

    def __init__(self, model: SplitModel, network: NetworkFabric,
                 split: Optional[int] = None, name: str = "tuner",
                 lr: float = 3e-3, batch_size: int = 64, seed: int = 0):
        self.name = name
        self.model = model
        self.split = model.num_stages - 1 if split is None else split
        if not 0 <= self.split < model.num_stages:
            raise ValueError("split must keep the trainable tail on the Tuner")
        self.network = network
        self.version = 0
        self.lr = lr
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self._stores: List[PipeStore] = []
        self._optimizer = None
        self._last_distributed: Optional[Dict[str, np.ndarray]] = None
        model.freeze_features()
        self.distributions: List[DistributionStats] = []

    # -- fleet management ---------------------------------------------------
    def register(self, store: PipeStore, replica: SplitModel) -> None:
        """Attach a PipeStore and push it a full model replica."""
        state = self.model.state_dict()
        replica.load_state_dict(state)
        replica.freeze_features()
        num_bytes = checknrun.state_dict_bytes(state)
        self.network.send(self.name, store.store_id, num_bytes, "model-full")
        store.install_model(replica, self.split, self.version)
        self._stores.append(store)
        self._last_distributed = state

    @property
    def stores(self) -> List[PipeStore]:
        return list(self._stores)

    # -- model distribution ---------------------------------------------------
    def distribute_update(self) -> DistributionStats:
        """Ship the current model to every reachable PipeStore as a delta.

        A store that is down keeps its old version; :meth:`catch_up`
        resynchronises it after repair.
        """
        if self._last_distributed is None:
            raise RuntimeError("register stores before distributing updates")
        new_state = self.model.state_dict()
        blob = checknrun.encode_delta(self._last_distributed, new_state)
        self.version += 1
        for store in self._stores:
            if not store.is_available:
                continue
            self.network.send(self.name, store.store_id, len(blob), "model-delta")
            store.apply_model_delta(blob, self.version)
        stats = DistributionStats(
            version=self.version,
            full_model_bytes=checknrun.state_dict_bytes(new_state),
            bytes_per_store=len(blob),
            used_delta=True,
        )
        self.distributions.append(stats)
        self._last_distributed = new_state
        return stats

    # -- FT-DMP fine-tuning ----------------------------------------------------
    def finetune(self, assignments: Optional[Dict[str, Sequence[str]]] = None,
                 epochs: int = 2, num_runs: int = 1,
                 distribute: bool = True) -> FinetuneReport:
        """One continuous-training round over the fleet's labelled photos.

        ``assignments`` maps store-id -> photo ids to train on (defaults to
        every labelled photo on each store).  The dataset is processed in
        ``num_runs`` pipeline runs: within a run every PipeStore extracts
        features for its share and ships them over; the Tuner then trains
        the tail for ``epochs`` epochs before the next run arrives (§5.2).
        """
        if not self._stores:
            raise RuntimeError("no PipeStores registered")
        if num_runs < 1:
            raise ValueError("num_runs must be >= 1")
        if assignments is None:
            assignments = {
                s.store_id: s.labeled_photo_ids() for s in self._stores
            }
        report = FinetuneReport(num_runs=num_runs, split=self.split)
        if self._optimizer is None:
            self._optimizer = Adam(self.model.classifier.parameters(), lr=self.lr)

        store_by_id = {s.store_id: s for s in self._stores}
        run_chunks = self._plan_runs(assignments, num_runs)
        for run_index, per_store_ids in enumerate(run_chunks):
            features, labels = self._gather_features(
                store_by_id, per_store_ids, report
            )
            if len(features) == 0:
                continue
            self._train_tail(features, labels, epochs, run_index, report)
        if distribute:
            self.distribute_update()
        return report

    def _plan_runs(self, assignments: Dict[str, Sequence[str]],
                   num_runs: int) -> List[Dict[str, List[str]]]:
        """Split every store's photo list into ``num_runs`` sub-lists."""
        runs: List[Dict[str, List[str]]] = [dict() for _ in range(num_runs)]
        for store_id, ids in assignments.items():
            ids = list(ids)
            bounds = np.linspace(0, len(ids), num_runs + 1).astype(int)
            for k, (a, b) in enumerate(zip(bounds[:-1], bounds[1:])):
                runs[k][store_id] = ids[a:b]
        return runs

    def _gather_features(self, store_by_id: Dict[str, PipeStore],
                         per_store_ids: Dict[str, List[str]],
                         report: FinetuneReport,
                         ) -> Tuple[np.ndarray, np.ndarray]:
        feature_chunks, label_chunks = [], []
        for store_id, ids in per_store_ids.items():
            if not ids:
                continue
            store = store_by_id[store_id]
            try:
                feats = store.extract_features(ids)
            except StoreUnavailableError:
                # data locality means a down store's photos cannot be
                # reassigned; train on what the healthy fleet provides and
                # record the gap so the operator can rerun later
                report.skipped_stores.append(store_id)
                continue
            num_bytes = feats.size * FEATURE_DTYPE_BYTES
            self.network.send(store_id, self.name, num_bytes, "features", feats)
            report.feature_bytes += num_bytes
            report.images_extracted += len(ids)
            feature_chunks.append(feats)
            label_chunks.append(
                np.array([store.train_label(pid) for pid in ids])
            )
        if not feature_chunks:
            return np.empty((0,)), np.empty((0,), dtype=np.int64)
        return (np.concatenate(feature_chunks, axis=0),
                np.concatenate(label_chunks, axis=0))

    def _train_tail(self, features: np.ndarray, labels: np.ndarray,
                    epochs: int, run_index: int, report: FinetuneReport) -> None:
        for epoch in range(epochs):
            losses = []
            for fb, yb in batch_iter(features, labels, self.batch_size, self._rng):
                logits = self.model.forward_from(Tensor(fb), self.split)
                loss = cross_entropy(logits, yb)
                self.model.zero_grad()
                loss.backward()
                self._optimizer.step()
                losses.append(loss.item())
            report.epochs.append(EpochRecord(
                run=run_index, epoch=epoch, loss=float(np.mean(losses)),
                images=len(features),
            ))

    def catch_up(self, store: PipeStore) -> None:
        """Resynchronise a repaired store that missed delta rounds."""
        if not store.is_available:
            raise StoreUnavailableError(f"{store.store_id} is still down")
        if store.model_version == self.version:
            return
        state = self.model.state_dict()
        num_bytes = checknrun.state_dict_bytes(state)
        self.network.send(self.name, store.store_id, num_bytes, "model-full")
        store.model.load_state_dict(state)
        store.model_version = self.version

    # -- offline inference orchestration ------------------------------------
    def trigger_offline_inference(self, store: PipeStore,
                                  photo_ids: Sequence[str],
                                  ) -> Dict[str, Tuple[int, float]]:
        """Ask one PipeStore to relabel its local photos (request + labels)."""
        self.network.send(self.name, store.store_id, 64, "inference-request")
        results = store.offline_infer(list(photo_ids))
        from ..sim.specs import LABEL_BYTES

        self.network.send(store.store_id, self.name,
                          LABEL_BYTES * len(results), "labels", results)
        return results

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> Tuple[float, float]:
        """(top-1, top-5) accuracy of the authoritative model."""
        from ..nn.losses import accuracy, topk_accuracy

        was_training = self.model.training
        self.model.eval()
        logits = []
        for start in range(0, len(x), batch_size):
            logits.append(self.model(Tensor(x[start:start + batch_size])).data)
        self.model.train(was_training)
        stacked = np.concatenate(logits, axis=0)
        return accuracy(stacked, y), topk_accuracy(stacked, y, k=5)
