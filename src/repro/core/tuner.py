"""Tuner — the fine-tuning server orchestrating PipeStores (§5).

The Tuner owns the authoritative model, triggers near-data jobs, trains
the trainable tail on features streamed back by PipeStores, and
redistributes updates as Check-N-Run deltas.  All weight updates are local
to the Tuner, so FT-DMP needs no cross-store synchronisation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.loader import batch_iter
from ..faults.errors import StaleEpochError, TransientFaultError
from ..faults.retry import RetryPolicy, call_with_retry
from ..models.graph import FEATURE_DTYPE_BYTES
from ..models.split import SplitModel
from ..nn.losses import cross_entropy
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer, wall_clock
from . import checknrun
from .fabric import NetworkFabric
from .ftdmp import EpochRecord, FinetuneReport
from .pipestore import PipeStore, StoreUnavailableError

#: maps a lost store's photo ids to replacement assignments
#: ``(lost_store_id, photo_ids) -> {new_store_id: [photo_ids...]}``
Relocator = Callable[[str, Sequence[str]], Dict[str, List[str]]]


@dataclass
class DistributionStats:
    """One model-distribution round across the fleet."""

    version: int
    full_model_bytes: int
    bytes_per_store: int
    used_delta: bool
    #: stores that did not receive this round (down, or every retry of
    #: the send dropped); ``catch_up`` resynchronises them after repair
    stores_missed: List[str] = field(default_factory=list)
    #: stores that were behind the delta's base version (they missed an
    #: earlier round) and were resynchronised with a full model instead
    stores_resynced: List[str] = field(default_factory=list)
    #: stores that rejected this round because it was stamped with a
    #: stale epoch — this Tuner has been deposed and must stand down
    stores_fenced: List[str] = field(default_factory=list)
    #: stores whose delta arrived relayed from a peer store instead of
    #: the Tuner (fan-out tree distribution); not a degradation
    stores_relayed: List[str] = field(default_factory=list)

    @property
    def reduction_factor(self) -> float:
        if self.bytes_per_store == 0:
            raise ValueError("no bytes distributed")
        return self.full_model_bytes / self.bytes_per_store

    @property
    def degraded(self) -> bool:
        return bool(self.stores_missed or self.stores_resynced
                    or self.stores_fenced)


class Tuner:
    """The training server of NDPipe."""

    def __init__(self, model: SplitModel, network: NetworkFabric,
                 split: Optional[int] = None, name: str = "tuner",
                 lr: float = 3e-3, batch_size: int = 64, seed: int = 0,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        self.name = name
        self.retry = retry_policy if retry_policy is not None else RetryPolicy()
        self.tracer = tracer
        self._metrics: Optional[MetricsRegistry] = None
        if metrics is not None:
            self.bind_metrics(metrics)
        self.model = model
        self.split = model.num_stages - 1 if split is None else split
        if not 0 <= self.split < model.num_stages:
            raise ValueError("split must keep the trainable tail on the Tuner")
        self.network = network
        self.version = 0
        #: election epoch this Tuner believes it holds the primary lease
        #: for; stamped on every model update so stores can fence zombies
        self.epoch = 0
        self._failed = False
        self._m_fenced = None
        self.lr = lr
        self.batch_size = batch_size
        self._rng = np.random.default_rng(seed)
        self._stores: List[PipeStore] = []
        self._optimizer = None
        self._last_distributed: Optional[Dict[str, np.ndarray]] = None
        model.freeze_features()
        self.distributions: List[DistributionStats] = []

    # -- observability -------------------------------------------------------
    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Report FT-DMP run timings and distribution rounds into a registry."""
        self._metrics = metrics
        self._m_store_stage = metrics.histogram(
            "ftdmp_store_stage_seconds",
            "wall seconds per run gathering features from the fleet")
        self._m_tuner_stage = metrics.histogram(
            "ftdmp_tuner_stage_seconds",
            "wall seconds per run training the tail on gathered features")
        self._m_runs = metrics.counter(
            "ftdmp_runs_total", "pipeline runs executed across fine-tunes")
        self._m_images = metrics.counter(
            "ftdmp_images_extracted_total",
            "images whose features reached the Tuner")
        self._m_feature_bytes = metrics.counter(
            "ftdmp_feature_bytes_total", "feature bytes shipped to the Tuner")
        self._m_distributions = metrics.counter(
            "checknrun_distributions_total", "model distribution rounds",
            label_names=("mechanism",))
        self._m_distributed_bytes = metrics.counter(
            "checknrun_distributed_bytes_total",
            "bytes shipped distributing model updates",
            label_names=("mechanism",))

    def _span(self, name: str, **args):
        if self.tracer is None:
            from contextlib import nullcontext

            return nullcontext()
        return self.tracer.span(name, category="ftdmp", **args)

    # -- fault injection ------------------------------------------------------
    @property
    def is_available(self) -> bool:
        return not self._failed

    def fail(self) -> None:
        """Take the Tuner process down (targeted fault injection)."""
        self._failed = True

    def repair(self) -> None:
        """Revive the process — it still holds its pre-crash epoch."""
        self._failed = False

    def bind_fencing_counter(self, counter) -> None:
        """Count updates stores rejected for carrying this Tuner's stale
        epoch (registered once by :class:`repro.ha.metrics.HAMetrics`)."""
        self._m_fenced = counter

    # -- fleet management ---------------------------------------------------
    def adopt_fleet(self, stores: Sequence[PipeStore]) -> None:
        """Take over an existing fleet without resending model replicas.

        Used at failover: the standby already holds the primary's exact
        training state (shipped checkpoints), so the stores' replicas are
        current — re-registering would waste a full-model send per store.
        """
        self._stores = list(stores)

    def register(self, store: PipeStore, replica: SplitModel) -> None:
        """Attach a PipeStore and push it a full model replica."""
        state = self.model.state_dict()
        replica.load_state_dict(state)
        replica.freeze_features()
        num_bytes = checknrun.state_dict_bytes(state)
        call_with_retry(
            lambda: self.network.send(
                self.name, store.store_id, num_bytes, "model-full"),
            self.retry)
        store.install_model(replica, self.split, self.version,
                            epoch=self.epoch)
        self._stores.append(store)
        self._last_distributed = state

    @property
    def stores(self) -> List[PipeStore]:
        return list(self._stores)

    # -- model distribution ---------------------------------------------------
    def distribute_update(self, send_order: Optional[Sequence[str]] = None,
                          senders: Optional[Dict[str, str]] = None,
                          ) -> DistributionStats:
        """Ship the current model to every reachable PipeStore.

        Stores whose replica sits exactly at the delta's base version get
        the Check-N-Run delta; stores that missed an earlier round (crash
        or dropped delta) would be silently corrupted by a delta encoded
        against a newer base, so they get a full-model resync instead.
        Every send is retried with exponential backoff; stores that stay
        unreachable are recorded in ``stores_missed`` and pick the round
        up later via :meth:`catch_up`.

        ``send_order``/``senders`` route the round through a fan-out tree
        (:class:`repro.placement.fanout.FanoutTree`): stores are visited
        in ``send_order`` and a store whose ``senders`` parent has already
        taken the delta this round receives it relayed from that peer —
        the delta bytes leave the parent's NIC, not the Tuner's.  A parent
        that missed, resynced, or got fenced falls back to a Tuner uplink,
        and full-model resyncs always come from the Tuner (only it holds
        the full state).  Defaults preserve exact unicast behaviour.
        """
        if self._last_distributed is None:
            raise RuntimeError("register stores before distributing updates")
        ordered = self._stores
        if send_order is not None:
            by_id = {s.store_id: s for s in self._stores}
            if sorted(send_order) != sorted(by_id):
                raise ValueError(
                    "send_order must cover every registered store exactly "
                    f"once; got {sorted(send_order)} for fleet "
                    f"{sorted(by_id)}")
            ordered = [by_id[sid] for sid in send_order]
        senders = dict(senders or {})
        base_version = self.version
        new_state = self.model.state_dict()
        blob = checknrun.encode_delta(self._last_distributed, new_state)
        self.version += 1
        stats = DistributionStats(
            version=self.version,
            full_model_bytes=checknrun.state_dict_bytes(new_state),
            bytes_per_store=len(blob),
            used_delta=True,
        )
        delta_holders: set = set()
        for store in ordered:
            if not store.is_available:
                stats.stores_missed.append(store.store_id)
                continue
            parent = senders.get(store.store_id)
            relay = parent if parent in delta_holders else None
            try:
                if store.model_version == base_version:
                    try:
                        call_with_retry(
                            lambda s=store, src=relay:
                                self._send_delta(s, blob, sender=src),
                            self.retry)
                        delta_holders.add(store.store_id)
                        if relay is not None:
                            stats.stores_relayed.append(store.store_id)
                    except checknrun.DeltaError:
                        # corrupt delta on arrival: fall back to full model
                        call_with_retry(
                            lambda s=store: self._send_full(s, new_state),
                            self.retry)
                        stats.stores_resynced.append(store.store_id)
                else:
                    call_with_retry(
                        lambda s=store: self._send_full(s, new_state),
                        self.retry)
                    stats.stores_resynced.append(store.store_id)
            except StaleEpochError:
                # this Tuner has been deposed: the store already accepted
                # a newer epoch and will never take our updates again
                stats.stores_fenced.append(store.store_id)
                if self._m_fenced is not None:
                    self._m_fenced.inc(node=self.name)
            except (TransientFaultError, StoreUnavailableError):
                stats.stores_missed.append(store.store_id)
        self.distributions.append(stats)
        self._last_distributed = new_state
        if self._metrics is not None:
            full_bytes = checknrun.state_dict_bytes(new_state)
            num_resynced = len(stats.stores_resynced)
            num_delta = (len(self._stores) - len(stats.stores_missed)
                         - len(stats.stores_fenced) - num_resynced)
            if num_delta:
                self._m_distributions.inc(num_delta, mechanism="delta")
                self._m_distributed_bytes.inc(num_delta * len(blob),
                                              mechanism="delta")
            if num_resynced:
                self._m_distributions.inc(num_resynced, mechanism="full")
                self._m_distributed_bytes.inc(num_resynced * full_bytes,
                                              mechanism="full")
        return stats

    def _send_delta(self, store: PipeStore, blob: bytes,
                    sender: Optional[str] = None) -> None:
        # the delta leaves the fan-out parent's NIC when one is routing
        src = self.name if sender is None else sender
        # ndlint: allow[ND005] -- invoked only via call_with_retry thunks
        self.network.send(src, store.store_id, len(blob), "model-delta")
        store.apply_model_delta(blob, self.version, epoch=self.epoch)

    def _send_full(self, store: PipeStore, state: Dict[str, np.ndarray]) -> None:
        num_bytes = checknrun.state_dict_bytes(state)
        # ndlint: allow[ND005] -- invoked only via call_with_retry thunks
        self.network.send(self.name, store.store_id, num_bytes, "model-full")
        store.apply_full_state(state, self.version, epoch=self.epoch)

    # -- FT-DMP fine-tuning ----------------------------------------------------
    def finetune(self, assignments: Optional[Dict[str, Sequence[str]]] = None,
                 epochs: int = 2, num_runs: int = 1,
                 distribute: bool = True,
                 relocate: Optional[Relocator] = None,
                 start_run: int = 0,
                 run_plan: Optional[List[Dict[str, List[str]]]] = None,
                 on_run_complete: Optional[
                     Callable[[int, List[Dict[str, List[str]]],
                               FinetuneReport], None]] = None,
                 report: Optional[FinetuneReport] = None) -> FinetuneReport:
        """One continuous-training round over the fleet's labelled photos.

        ``assignments`` maps store-id -> photo ids to train on (defaults to
        every labelled photo on each store).  The dataset is processed in
        ``num_runs`` pipeline runs: within a run every PipeStore extracts
        features for its share and ships them over; the Tuner then trains
        the tail for ``epochs`` epochs before the next run arrives (§5.2).

        ``relocate`` enables degraded-mode FT-DMP: when a store is lost
        mid-run, its shard is handed to the callback (the cluster re-places
        journalled photos onto survivors) and the returned assignments are
        extracted in the same run; photos that cannot be re-placed are
        counted as deferred in the report.

        The remaining parameters exist for crash-consistent resume:
        ``run_plan`` pins an explicit per-run schedule (replacing the
        ``assignments``/``num_runs`` planning), ``start_run`` skips runs
        that already completed before a crash, ``report`` continues
        accumulating into a restored report, and ``on_run_complete(run,
        plan, report)`` fires after each run trains — the cluster hooks
        it to write a checkpoint, making every run boundary a durable
        resume point.
        """
        if not self._stores:
            raise RuntimeError("no PipeStores registered")
        if run_plan is None:
            if num_runs < 1:
                raise ValueError("num_runs must be >= 1")
            if assignments is None:
                assignments = {
                    s.store_id: s.labeled_photo_ids() for s in self._stores
                }
            run_plan = self._plan_runs(assignments, num_runs)
        if not 0 <= start_run <= len(run_plan):
            raise ValueError(
                f"start_run {start_run} outside the {len(run_plan)}-run plan")
        if report is None:
            report = FinetuneReport(num_runs=len(run_plan), split=self.split)
        if self._optimizer is None:
            self._optimizer = Adam(self.model.classifier.parameters(), lr=self.lr)

        store_by_id = {s.store_id: s for s in self._stores}
        for run_index in range(start_run, len(run_plan)):
            per_store_ids = run_plan[run_index]
            images_before = report.images_extracted
            bytes_before = report.feature_bytes
            start = wall_clock()
            with self._span("ftdmp.store_stage", run=run_index):
                features, labels = self._gather_features(
                    store_by_id, per_store_ids, report, relocate=relocate
                )
            store_seconds = wall_clock() - start
            if self._metrics is not None:
                self._m_runs.inc()
                self._m_store_stage.observe(store_seconds)
                self._m_images.inc(report.images_extracted - images_before)
                self._m_feature_bytes.inc(report.feature_bytes - bytes_before)
            if len(features) > 0:
                start = wall_clock()
                with self._span("ftdmp.tuner_stage", run=run_index,
                                images=len(features)):
                    self._train_tail(features, labels, epochs, run_index,
                                     report)
                if self._metrics is not None:
                    self._m_tuner_stage.observe(wall_clock() - start)
            if on_run_complete is not None:
                on_run_complete(run_index, run_plan, report)
        if distribute:
            with self._span("ftdmp.distribute"):
                self.distribute_update()
        return report

    def _plan_runs(self, assignments: Dict[str, Sequence[str]],
                   num_runs: int) -> List[Dict[str, List[str]]]:
        """Split every store's photo list into ``num_runs`` sub-lists."""
        runs: List[Dict[str, List[str]]] = [dict() for _ in range(num_runs)]
        for store_id, ids in assignments.items():
            ids = list(ids)
            bounds = np.linspace(0, len(ids), num_runs + 1).astype(int)
            for k, (a, b) in enumerate(zip(bounds[:-1], bounds[1:])):
                runs[k][store_id] = ids[a:b]
        return runs

    def _gather_features(self, store_by_id: Dict[str, PipeStore],
                         per_store_ids: Dict[str, List[str]],
                         report: FinetuneReport,
                         relocate: Optional[Relocator] = None,
                         ) -> Tuple[np.ndarray, np.ndarray]:
        feature_chunks, label_chunks = [], []
        # (store_id, ids, was_relocated); shards re-placed after a crash
        # re-enter this queue and extract on their new store in-run
        pending = deque(
            (store_id, list(ids), False)
            for store_id, ids in per_store_ids.items()
        )
        # bounds relocation ping-pong if stores keep crashing under us
        relocation_budget = 2 * max(1, len(store_by_id))
        while pending:
            store_id, ids, was_relocated = pending.popleft()
            if not ids:
                continue
            store = store_by_id[store_id]
            try:
                feats = store.extract_features(ids)
                labels = np.array([store.train_label(pid) for pid in ids])
            except StoreUnavailableError:
                if store_id not in report.skipped_stores:
                    report.skipped_stores.append(store_id)
                if relocate is not None and relocation_budget > 0:
                    relocation_budget -= 1
                    placement = relocate(store_id, ids)
                    moved = sum(len(v) for v in placement.values())
                    report.photos_deferred += len(ids) - moved
                    for new_store_id, new_ids in placement.items():
                        if new_ids:
                            pending.append((new_store_id, list(new_ids), True))
                else:
                    # without a relocator, data locality pins the shard to
                    # its dead store; train on what the healthy fleet
                    # provides and record the gap for a rerun after repair
                    report.photos_deferred += len(ids)
                continue
            num_bytes = feats.size * FEATURE_DTYPE_BYTES
            try:
                call_with_retry(
                    lambda: self.network.send(store_id, self.name, num_bytes,
                                              "features", feats),
                    self.retry)
            except TransientFaultError:
                # the feature stream itself is persistently dropped
                report.photos_deferred += len(ids)
                continue
            report.feature_bytes += num_bytes
            report.images_extracted += len(ids)
            if was_relocated:
                report.photos_repartitioned += len(ids)
            feature_chunks.append(feats)
            label_chunks.append(labels)
        if not feature_chunks:
            return np.empty((0,)), np.empty((0,), dtype=np.int64)
        return (np.concatenate(feature_chunks, axis=0),
                np.concatenate(label_chunks, axis=0))

    def _train_tail(self, features: np.ndarray, labels: np.ndarray,
                    epochs: int, run_index: int, report: FinetuneReport) -> None:
        for epoch in range(epochs):
            losses = []
            for fb, yb in batch_iter(features, labels, self.batch_size, self._rng):
                logits = self.model.forward_from(Tensor(fb), self.split)
                loss = cross_entropy(logits, yb)
                self.model.zero_grad()
                loss.backward()
                self._optimizer.step()
                losses.append(loss.item())
            report.epochs.append(EpochRecord(
                run=run_index, epoch=epoch, loss=float(np.mean(losses)),
                images=len(features),
            ))

    def catch_up(self, store: PipeStore) -> None:
        """Resynchronise a repaired store that missed delta rounds."""
        if not store.is_available:
            raise StoreUnavailableError(f"{store.store_id} is still down")
        if store.model_version == self.version:
            return
        state = self.model.state_dict()
        call_with_retry(lambda: self._send_full(store, state), self.retry)

    # -- checkpoint support ---------------------------------------------------
    def export_training_state(self) -> Dict:
        """Everything a checkpoint needs to resume training bit-exactly:
        model weights, optimizer moments, RNG state, version counters."""
        from ..durability.checkpoint import rng_state_to_json

        state: Dict = {
            "version": self.version,
            "epoch": self.epoch,
            "split": self.split,
            "lr": self.lr,
            "rng": rng_state_to_json(self._rng),
            "model": self.model.state_dict(),
            "last_distributed": self._last_distributed,
            "optimizer": None,
        }
        if self._optimizer is not None:
            opt = self._optimizer
            state["optimizer"] = {
                "t": opt._t,
                "m": {f"{i:04d}": arr for i, arr in enumerate(opt._m)},
                "v": {f"{i:04d}": arr for i, arr in enumerate(opt._v)},
            }
        return state

    def import_training_state(self, state: Dict) -> None:
        """Inverse of :meth:`export_training_state` on a fresh Tuner."""
        self.version = int(state["version"])
        # epoch absent in pre-HA checkpoints: those predate elections
        self.epoch = int(state.get("epoch", 0))
        self.model.load_state_dict(state["model"])
        self._last_distributed = state["last_distributed"]
        self._rng.bit_generator.state = state["rng"]
        opt_state = state["optimizer"]
        if opt_state is None:
            self._optimizer = None
            return
        optimizer = Adam(self.model.classifier.parameters(), lr=self.lr)
        moments_m = [opt_state["m"][k] for k in sorted(opt_state["m"])]
        moments_v = [opt_state["v"][k] for k in sorted(opt_state["v"])]
        if len(moments_m) != len(optimizer._m):
            raise ValueError(
                "checkpointed optimizer disagrees with the model's "
                f"trainable tail: {len(moments_m)} != {len(optimizer._m)}"
            )
        for slot, loaded in zip(optimizer._m, moments_m):
            if slot.shape != loaded.shape:
                raise ValueError("optimizer moment shape mismatch")
        optimizer._m = [np.array(a, copy=True) for a in moments_m]
        optimizer._v = [np.array(a, copy=True) for a in moments_v]
        optimizer._t = int(opt_state["t"])
        self._optimizer = optimizer

    # -- offline inference orchestration ------------------------------------
    def trigger_offline_inference(self, store: PipeStore,
                                  photo_ids: Sequence[str],
                                  ) -> Dict[str, Tuple[int, float]]:
        """Ask one PipeStore to relabel its local photos (request + labels).

        The whole dispatch (request, near-data inference, label return) is
        retried with exponential backoff: a dropped message or a store
        that recovers between attempts does not abort the campaign.  When
        every attempt fails, the last error propagates and the caller
        records the store as skipped.
        """
        from ..sim.specs import LABEL_BYTES

        ids = list(photo_ids)

        def attempt() -> Dict[str, Tuple[int, float]]:
            self.network.send(self.name, store.store_id, 64,
                              "inference-request")
            results = store.offline_infer(ids)
            self.network.send(store.store_id, self.name,
                              LABEL_BYTES * len(results), "labels", results)
            return results

        return call_with_retry(
            attempt, self.retry,
            retryable=(TransientFaultError, StoreUnavailableError))

    # -- evaluation ------------------------------------------------------------
    def evaluate(self, x: np.ndarray, y: np.ndarray,
                 batch_size: int = 256) -> Tuple[float, float]:
        """(top-1, top-5) accuracy of the authoritative model."""
        from ..nn.losses import accuracy, topk_accuracy

        was_training = self.model.training
        self.model.eval()
        logits = []
        for start in range(0, len(x), batch_size):
            logits.append(self.model(Tensor(x[start:start + batch_size])).data)
        self.model.train(was_training)
        stacked = np.concatenate(logits, axis=0)
        return accuracy(stacked, y), topk_accuracy(stacked, y, k=5)
