"""Cluster checkpoint serialisation, split out of ``cluster.py``.

Third cut of the ROADMAP item-1 decomposition: the CRC-trailed
checkpoint frame format and its restore-side validation are pure
functions of the cluster's state, so they live here as free functions.
:meth:`~repro.core.cluster.NDPipeCluster.checkpoint` and
:meth:`~repro.core.cluster.NDPipeCluster.restore` delegate verbatim —
the manifest layout (including the ``"cluster"`` section's
``ingest_counter``/``rr_next``/``replication`` keys) is unchanged, so
pre-refactor checkpoints restore byte-identically.
"""

from __future__ import annotations

from typing import List, Optional

from ..durability.checkpoint import (
    CheckpointError,
    FinetuneProgress,
    pack_arrays,
    read_frame,
    unpack_arrays,
    write_frame,
)
from ..durability.replication import ReplicaMap
from ..storage.persistence import (
    dump_object_store,
    dump_photo_database,
    load_object_store,
    load_photo_database,
)

__all__ = ["build_checkpoint", "restore_checkpoint"]


def build_checkpoint(cluster, ftdmp: Optional[FinetuneProgress] = None,
                     ) -> bytes:
    """Serialise the full lifecycle into one CRC-trailed blob.

    Captures everything resume needs bit-exactly: the Tuner's model,
    optimizer moments and RNG stream, every store's object snapshot,
    model replica and training labels, the label database with its
    version history, the replica map, the upload journal, and — when
    taken mid-fine-tune — the FT-DMP run journal ``ftdmp``.
    """
    blobs: List[bytes] = []

    def add(blob: bytes) -> int:
        blobs.append(blob)
        return len(blobs) - 1

    tuner_state = cluster.tuner.export_training_state()
    tuner_manifest = {
        "version": tuner_state["version"],
        "split": tuner_state["split"],
        "lr": tuner_state["lr"],
        "rng": tuner_state["rng"],
        "model_blob": add(pack_arrays(tuner_state["model"])),
        "last_distributed_blob": (
            None if tuner_state["last_distributed"] is None
            else add(pack_arrays(tuner_state["last_distributed"]))),
        "optimizer": None,
    }
    if tuner_state["optimizer"] is not None:
        opt = tuner_state["optimizer"]
        tuner_manifest["optimizer"] = {
            "t": opt["t"],
            "m_blob": add(pack_arrays(opt["m"])),
            "v_blob": add(pack_arrays(opt["v"])),
        }
    stores_manifest = []
    for store in cluster.stores:
        stores_manifest.append({
            "store_id": store.store_id,
            "model_version": store.model_version,
            "objects_blob": add(dump_object_store(store.objects)),
            "model_blob": add(pack_arrays(store.model.state_dict())),
            "train_labels": store.train_labels(),
        })
    journal = cluster.control.journal
    journal_manifest = None
    if journal is not None:
        journal_manifest = {
            "labels": {pid: label
                       for pid, (_pixels, label) in journal.items()},
            "pixels_blob": add(pack_arrays(
                {pid: pixels
                 for pid, (pixels, _label) in journal.items()})),
        }
    manifest = {
        "cluster": {
            "ingest_counter": cluster._ingest_counter,
            "rr_next": cluster._rr_next,
            "replication": cluster.replication,
        },
        "tuner": tuner_manifest,
        "stores": stores_manifest,
        "db_blob": add(dump_photo_database(cluster.database)),
        "replica_map": cluster.replicas.to_dict(),
        "journal": journal_manifest,
        "ftdmp": None if ftdmp is None else ftdmp.to_dict(),
    }
    with cluster.tracer.span("cluster.checkpoint",
                             tuner_version=cluster.tuner.version):
        return write_frame(manifest, blobs)


def restore_checkpoint(cluster, blob: bytes) -> Optional[FinetuneProgress]:
    """Load a checkpoint into a freshly built cluster.

    The cluster must have been constructed with the same store fleet the
    checkpoint describes (``inspect_checkpoint`` reports it).  Returns
    the pending :class:`FinetuneProgress` if the checkpoint was taken
    mid-fine-tune, or ``None``.
    """
    manifest, blobs = read_frame(blob)
    try:
        checkpoint_ids = [s["store_id"] for s in manifest["stores"]]
        cluster_ids = [s.store_id for s in cluster.stores]
        if checkpoint_ids != cluster_ids:
            raise CheckpointError(
                f"checkpoint describes stores {checkpoint_ids} but this "
                f"cluster has {cluster_ids}; size the cluster from "
                "inspect_checkpoint() first"
            )
        tuner_manifest = manifest["tuner"]
        if tuner_manifest["split"] != cluster.tuner.split:
            raise CheckpointError(
                f"checkpoint split {tuner_manifest['split']} does not "
                f"match this cluster's split {cluster.tuner.split}"
            )
        last_blob = tuner_manifest["last_distributed_blob"]
        tuner_state = {
            "version": tuner_manifest["version"],
            "rng": tuner_manifest["rng"],
            "model": unpack_arrays(blobs[tuner_manifest["model_blob"]]),
            "last_distributed": (
                None if last_blob is None
                else unpack_arrays(blobs[last_blob])),
            "optimizer": None,
        }
        if tuner_manifest["optimizer"] is not None:
            opt = tuner_manifest["optimizer"]
            tuner_state["optimizer"] = {
                "t": opt["t"],
                "m": unpack_arrays(blobs[opt["m_blob"]]),
                "v": unpack_arrays(blobs[opt["v_blob"]]),
            }
        store_states = [
            (load_object_store(blobs[entry["objects_blob"]],
                               name=entry["store_id"]),
             unpack_arrays(blobs[entry["model_blob"]]),
             int(entry["model_version"]),
             dict(entry["train_labels"]))
            for entry in manifest["stores"]
        ]
        database = load_photo_database(blobs[manifest["db_blob"]])
        replicas = ReplicaMap.from_dict(manifest["replica_map"])
        journal_manifest = manifest["journal"]
        journal = None
        if journal_manifest is not None:
            pixels = unpack_arrays(blobs[journal_manifest["pixels_blob"]])
            journal = {
                pid: (pixels[pid],
                      None if label is None else int(label))
                for pid, label in journal_manifest["labels"].items()
            }
        cluster_manifest = manifest["cluster"]
        replication = int(cluster_manifest["replication"])
        if not 1 <= replication <= len(cluster.stores):
            raise CheckpointError(
                f"checkpoint replication {replication} does not fit a "
                f"{len(cluster.stores)}-store cluster"
            )
        progress = (None if manifest["ftdmp"] is None
                    else FinetuneProgress.from_dict(manifest["ftdmp"]))
    except (KeyError, IndexError, TypeError) as exc:
        raise CheckpointError(
            f"malformed checkpoint manifest: {exc!r}") from exc
    # everything parsed and validated — only now mutate the cluster
    with cluster.tracer.span("cluster.restore",
                             tuner_version=tuner_state["version"]):
        cluster.tuner.import_training_state(tuner_state)
        for store, (objects, model_state, version, labels) in zip(
                cluster.stores, store_states):
            store.objects = objects
            store.model.load_state_dict(model_state)
            store.model_version = version
            for pid, label in labels.items():
                store.set_train_label(pid, label)
        cluster.database = database
        cluster.replicas = replicas
        cluster._ingest_counter = int(cluster_manifest["ingest_counter"])
        cluster._rr_next = int(cluster_manifest["rr_next"])
        cluster.replication = replication
        cluster.control.restore_journal(journal)
        # the front end serves whatever model was last distributed
        state = tuner_state["last_distributed"]
        if state is None:
            state = cluster.tuner.model.state_dict()
        cluster.inference_server.sync_model(state)
    return progress
