"""Convergence calculators for pipelined FT-DMP (§5.2, Theorem 5.1).

The paper guarantees each pipeline run converges given (A) hidden dims at
least min(input, output) dims, (B) delta-balanced starting weights, and (C)
an initial loss bounded via the previous run's final loss plus a Hoeffding
inter-run gap.  These helpers compute the quantities in Lemma 5.2 and
Theorem 5.1 and check delta-balancedness of real weight matrices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


def inter_run_loss_gap(num_weights: int, num_samples: int,
                       confidence: float = 0.05) -> float:
    """Lemma 5.2's Delta: Hoeffding bound on |l2(0) - l1(T1)|.

    ``Delta = sqrt(log(2P / theta) / (2m))`` with ``P`` total weights,
    ``m`` training samples, ``theta`` the union-bound confidence.
    """
    if num_weights <= 0 or num_samples <= 0:
        raise ValueError("weights and samples must be positive")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    return math.sqrt(math.log(2.0 * num_weights / confidence) / (2.0 * num_samples))


def iterations_to_converge(prev_loss: float, gap: float, target_loss: float,
                           learning_rate: float, deficiency_margin: float,
                           num_layers: int) -> float:
    """Theorem 5.1's T2 bound: iterations for the next run to reach target.

    ``T2 >= log((l1(T1) + Delta) / eps2) / (eta * c^(2(N-1)/N))``.
    """
    if target_loss <= 0:
        raise ValueError("target loss must be positive")
    if learning_rate <= 0 or deficiency_margin <= 0:
        raise ValueError("learning rate and deficiency margin must be positive")
    if num_layers < 2:
        raise ValueError("the analysis needs at least two layers")
    start = prev_loss + gap
    if start <= target_loss:
        return 0.0
    exponent = 2.0 * (num_layers - 1) / num_layers
    rate = learning_rate * deficiency_margin ** exponent
    return math.log(start / target_loss) / rate


def delta_balancedness(weights: Sequence[np.ndarray]) -> float:
    """Max ||W_{i+1}^T W_{i+1} - W_i W_i^T||_F over consecutive layers.

    The assumption-(B) quantity; a model is 'well-trained' in the paper's
    sense when this is small.
    """
    if len(weights) < 2:
        raise ValueError("need at least two weight matrices")
    worst = 0.0
    for w_cur, w_next in zip(weights[:-1], weights[1:]):
        gram_next = w_next.T @ w_next
        gram_cur = w_cur @ w_cur.T
        if gram_next.shape != gram_cur.shape:
            raise ValueError(
                f"inner dimensions disagree: {gram_next.shape} vs {gram_cur.shape}"
            )
        worst = max(worst, float(np.linalg.norm(gram_next - gram_cur, "fro")))
    return worst


@dataclass(frozen=True)
class RunConvergence:
    """Per-run verdict: does a run's start loss obey the Lemma 5.2 bound?"""

    run: int
    start_loss: float
    end_loss: float
    #: upper bound on the run's starting loss (prev run's final loss + Delta);
    #: infinity for the first run, which has no predecessor
    start_bound: float

    @property
    def satisfies_lemma(self) -> bool:
        return self.start_loss <= self.start_bound


def check_pipelined_losses(run_losses: Sequence[Sequence[float]],
                           num_weights: int, samples_per_run: int,
                           confidence: float = 0.05) -> List[RunConvergence]:
    """Audit an observed pipelined training trajectory against Lemma 5.2.

    For each run k >= 1, the starting loss should not exceed the previous
    run's final loss plus the Hoeffding inter-run gap
    ``Delta(num_weights, samples_per_run, confidence)``.
    """
    if samples_per_run <= 0:
        raise ValueError("samples_per_run must be positive")
    gap = inter_run_loss_gap(num_weights, samples_per_run, confidence)
    verdicts: List[RunConvergence] = []
    prev_final = float("inf")
    for k, losses in enumerate(run_losses):
        if not losses:
            raise ValueError(f"run {k} recorded no losses")
        start, end = float(losses[0]), float(losses[-1])
        bound = float("inf") if k == 0 else prev_final + gap
        verdicts.append(RunConvergence(run=k, start_loss=start, end_loss=end,
                                       start_bound=bound))
        prev_final = end
    return verdicts
