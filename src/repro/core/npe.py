"""NPE — the near-data processing engine inside a PipeStore (§5.4).

Two faces:

* :class:`ThreadedPipeline` — a real 3-stage pipeline (data loading ->
  CPU preprocessing/decompression -> accelerator FE/classify) built on
  worker threads and bounded queues.  PipeStores run their offline
  inference and feature extraction through it; zlib releases the GIL, so
  the overlap is genuine.
* :func:`npe_task_times` — the calibrated per-task cost model behind the
  Fig. 12 ablation (Naive -> +Offload -> +Comp -> +Batch), expressed as
  per-image milliseconds for each subtask on one PipeStore.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..lint.guards import guarded_by
from ..models.graph import ModelGraph
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import wall_clock
from ..sim.specs import (
    COMPRESSED_PREPROCESSED_BYTES,
    PREPROCESSED_BYTES,
    RAW_IMAGE_BYTES,
    AcceleratorSpec,
    CpuSpec,
    DiskSpec,
    ST1_RAID,
    STORAGE_CPU,
    TESLA_T4,
)

#: NPE optimisation levels, in the order Fig. 12 applies them
ABLATION_LEVELS = ("Naive", "+Offload", "+Comp", "+Batch")


# ---------------------------------------------------------------------------
# The runnable 3-stage pipeline
# ---------------------------------------------------------------------------
_SENTINEL = object()


@dataclass
class StageStats:
    name: str
    items: int = 0
    busy_seconds: float = 0.0


@guarded_by("_stats_lock", "stats", "cumulative_stats", "aborted_stats")
class ThreadedPipeline:
    """A bounded-queue, one-thread-per-stage pipeline over real callables.

    ``stages`` maps stage names to functions item -> item.  Items flow in
    submission order; output order is preserved.  Per-stage busy time is
    recorded so callers can identify the bottleneck stage, mirroring how
    the paper profiles its NPE.

    A stage exception aborts the whole run: the feeder stops submitting,
    every stage drains its input until the sentinel arrives (so no thread
    ever blocks on a full queue), all threads are joined, and the first
    error is re-raised to the caller.

    ``stage_hook(stage_name, item)`` is the fault-injection seam: when
    set, it is invoked before each stage function and may sleep (slow
    accelerator) or raise (injected stage failure); its time is charged
    to the stage's busy seconds.

    ``stats`` describes the **latest** ``run()`` only, so ``bottleneck()``
    on a reused pipeline never mixes runs (it used to accumulate across
    runs and report stale totals).  ``cumulative_stats`` keeps the
    lifetime view, and with ``metrics`` set the same totals land in the
    shared registry (``npe_stage_items_total`` /
    ``npe_stage_busy_seconds_total``, labelled by pipeline and stage).

    Only *completed* runs fold into ``cumulative_stats`` and the metric
    counters: an aborted run discards its results, so its partial work
    would double-count every item the caller retries.  That partial work
    is tracked separately in ``aborted_stats`` (it used to leak into the
    cumulative view).
    """

    def __init__(self, stages: Sequence, queue_depth: int = 8,
                 stage_hook: Optional[Callable[[str, object], None]] = None,
                 name: str = "npe",
                 metrics: Optional[MetricsRegistry] = None):
        if not stages:
            raise ValueError("need at least one stage")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self._stages: List = list(stages)
        self._queue_depth = queue_depth
        self.stage_hook = stage_hook
        self.name = name
        self._stats_lock = threading.Lock()
        self.stats = [StageStats(name) for name, _ in self._stages]
        self.cumulative_stats = [StageStats(name) for name, _ in self._stages]
        self.aborted_stats = [StageStats(name) for name, _ in self._stages]
        self._metrics: Optional[MetricsRegistry] = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Accumulate per-stage items/busy time in a shared registry."""
        self._metrics = metrics
        self._m_items = metrics.counter(
            "npe_stage_items_total", "items processed per pipeline stage",
            label_names=("pipeline", "stage"))
        self._m_busy = metrics.counter(
            "npe_stage_busy_seconds_total", "busy seconds per pipeline stage",
            label_names=("pipeline", "stage"))

    def run(self, items: Iterable) -> List:
        """Push every item through all stages; returns outputs in order."""
        # per-run view: a reused pipeline must not report stale totals
        with self._stats_lock:
            self.stats = [StageStats(name) for name, _ in self._stages]
        queues = [queue.Queue(maxsize=self._queue_depth)
                  for _ in range(len(self._stages) + 1)]
        results: List = []
        errors: List[BaseException] = []
        abort = threading.Event()

        def worker(index: int, name: str, fn: Callable):
            with self._stats_lock:
                stats = self.stats[index]
            while True:
                item = queues[index].get()
                if item is _SENTINEL:
                    queues[index + 1].put(_SENTINEL)
                    return
                if abort.is_set():
                    # drain mode: keep consuming so upstream stages and
                    # the feeder never block on a full queue
                    continue
                try:
                    start = wall_clock()
                    if self.stage_hook is not None:
                        self.stage_hook(name, item)
                    out = fn(item)
                    stats.busy_seconds += wall_clock() - start
                    stats.items += 1
                except BaseException as exc:  # propagate to the caller
                    errors.append(exc)
                    abort.set()
                    continue
                queues[index + 1].put(out)

        threads = [
            threading.Thread(target=worker, args=(i, name, fn), daemon=True)
            for i, (name, fn) in enumerate(self._stages)
        ]
        for thread in threads:
            thread.start()
        feeder_error: List[BaseException] = []

        def feeder():
            try:
                for item in items:
                    if abort.is_set():
                        return
                    queues[0].put(item)
            except BaseException as exc:
                feeder_error.append(exc)
                abort.set()
            finally:
                queues[0].put(_SENTINEL)

        feed_thread = threading.Thread(target=feeder, daemon=True)
        feed_thread.start()
        while True:
            out = queues[-1].get()
            if out is _SENTINEL:
                break
            results.append(out)
        feed_thread.join()
        for thread in threads:
            thread.join()
        if errors or feeder_error:
            # the run's results are discarded, so its partial work must
            # not fold into the completed-work views: a retry would then
            # count every successfully retried item twice
            self._absorb_aborted_stats()
            if errors:
                raise errors[0]
            raise feeder_error[0]
        self._absorb_run_stats()
        return results

    def _absorb_run_stats(self) -> None:
        """Fold the finished run into the cumulative and metric views."""
        with self._stats_lock:
            pairs = list(zip(self.stats, self.cumulative_stats))
        for run_stats, lifetime in pairs:
            lifetime.items += run_stats.items
            lifetime.busy_seconds += run_stats.busy_seconds
            if self._metrics is not None and run_stats.items:
                self._m_items.inc(run_stats.items, pipeline=self.name,
                                  stage=run_stats.name)
                self._m_busy.inc(run_stats.busy_seconds, pipeline=self.name,
                                 stage=run_stats.name)

    def _absorb_aborted_stats(self) -> None:
        """Bank an aborted run's partial work in the discarded-work view."""
        with self._stats_lock:
            pairs = list(zip(self.stats, self.aborted_stats))
        for run_stats, discarded in pairs:
            discarded.items += run_stats.items
            discarded.busy_seconds += run_stats.busy_seconds

    def bottleneck(self) -> StageStats:
        with self._stats_lock:
            return max(self.stats, key=lambda s: s.busy_seconds)


# ---------------------------------------------------------------------------
# The Fig. 12 ablation cost model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class NpeConfig:
    """What the optimisation level changes about PipeStore execution."""

    level: str
    #: inference reads: raw JPEG (Naive) vs preprocessed binary (+Offload)
    #: vs compressed binary (+Comp)
    read_bytes_inference: int
    read_bytes_finetune: int
    preprocess_on_store: bool
    decompress: bool
    batch_size: int
    decompress_cores: int = 2


def _level_config(level: str) -> NpeConfig:
    if level == "Naive":
        return NpeConfig(level, RAW_IMAGE_BYTES, PREPROCESSED_BYTES,
                         preprocess_on_store=True, decompress=False,
                         batch_size=1, decompress_cores=1)
    if level == "+Offload":
        return NpeConfig(level, PREPROCESSED_BYTES, PREPROCESSED_BYTES,
                         preprocess_on_store=False, decompress=False,
                         batch_size=1, decompress_cores=1)
    if level == "+Comp":
        return NpeConfig(level, COMPRESSED_PREPROCESSED_BYTES,
                         COMPRESSED_PREPROCESSED_BYTES,
                         preprocess_on_store=False, decompress=True,
                         batch_size=1, decompress_cores=2)
    if level == "+Batch":
        return NpeConfig(level, COMPRESSED_PREPROCESSED_BYTES,
                         COMPRESSED_PREPROCESSED_BYTES,
                         preprocess_on_store=False, decompress=True,
                         batch_size=128, decompress_cores=2)
    raise ValueError(f"unknown NPE level {level!r}; use one of {ABLATION_LEVELS}")


def npe_task_times(graph: ModelGraph, level: Union[str, NpeConfig],
                   task: str = "inference",
                   accelerator: AcceleratorSpec = TESLA_T4,
                   cpu: CpuSpec = STORAGE_CPU,
                   disk: DiskSpec = ST1_RAID,
                   preprocess_cores: int = 1) -> Dict[str, float]:
    """Per-image milliseconds of each PipeStore subtask at one NPE level.

    ``task`` is ``"inference"`` (Read / Preproc / Decomp / FE&Cl) or
    ``"finetune"`` (Read / Decomp / FE).  This regenerates Fig. 12.
    ``level`` is an ablation-level name or a custom :class:`NpeConfig`.
    """
    if task not in ("inference", "finetune"):
        raise ValueError("task must be 'inference' or 'finetune'")
    cfg = level if isinstance(level, NpeConfig) else _level_config(level)
    times: Dict[str, float] = {}

    read_bytes = (cfg.read_bytes_inference if task == "inference"
                  else cfg.read_bytes_finetune)
    times["Read"] = 1e3 * read_bytes / (disk.read_mbps * 1e6)

    if task == "inference":
        if cfg.preprocess_on_store:
            rate = cpu.preprocess_ips(preprocess_cores)
            times["Preproc"] = 1e3 / rate
        else:
            times["Preproc"] = 0.0

    if cfg.decompress:
        rate = cpu.decompress_ips(cfg.decompress_cores, read_bytes)
        times["Decomp"] = 1e3 / rate
    else:
        times["Decomp"] = 0.0

    if task == "inference":
        ips = accelerator.inference_ips(graph, cfg.batch_size)
        times["FE&Cl"] = 1e3 / ips
    else:
        # fine-tuning trains at 4x the inference batch (§6.1)
        batch = cfg.batch_size * 4 if cfg.batch_size > 1 else 1
        ips = accelerator.fe_ips(graph, graph.num_partition_points() - 2,
                                 batch, training=True)
        times["FE"] = 1e3 / ips
    return times


def npe_ablation(graph: ModelGraph, task: str = "inference",
                 accelerator: AcceleratorSpec = TESLA_T4,
                 ) -> Dict[str, Dict[str, float]]:
    """All four optimisation levels (the full Fig. 12 panel)."""
    return {
        level: npe_task_times(graph, level, task, accelerator)
        for level in ABLATION_LEVELS
    }


def npe_pipeline_stage_times(times: Dict[str, float]) -> Dict[str, float]:
    """Fold subtask times into the 3 physical pipeline stages.

    The pipeline has exactly three stages — disk read, CPU work, and the
    accelerator — and Preproc and Decomp both run on the *same* CPU
    stage, so their times add rather than pipeline against each other.
    """
    return {
        "read": times.get("Read", 0.0),
        "cpu": times.get("Preproc", 0.0) + times.get("Decomp", 0.0),
        "accelerator": times.get("FE&Cl", times.get("FE", 0.0)),
    }


def npe_throughput_ips(graph: ModelGraph, level: Union[str, NpeConfig],
                       task: str = "inference",
                       accelerator: AcceleratorSpec = TESLA_T4,
                       ) -> float:
    """Steady-state PipeStore throughput: 3-stage pipelined bottleneck.

    The bottleneck is ``max(Read, Preproc + Decomp, FE)`` — *not* the max
    over subtasks, because preprocessing and decompression share the CPU
    stage (a config enabling both is slower than either alone).
    """
    times = npe_task_times(graph, level, task, accelerator)
    slowest_ms = max(npe_pipeline_stage_times(times).values())
    if slowest_ms <= 0:
        return float("inf")
    return 1e3 / slowest_ms
