"""FT-DMP: fine-tuning-based data & model parallelism (§5.1-§5.2), runnable.

The strategy: replicate the weight-freeze front of the model on PipeStores
(forward only — identical to inference), keep every trainable layer on the
Tuner.  PipeStores extract features for their local batches; the Tuner
trains the tail on those features.  No weight synchronisation ever crosses
the network because all updates happen in one place.

This module executes the strategy for real on the numpy substrate:
features are genuinely extracted by the frozen front, the classifier is
genuinely trained with SGD/Adam, and pipelined training (``num_runs > 1``)
genuinely trains run-by-run over sub-datasets — so catastrophic forgetting
at large ``num_runs`` (Fig. 17) is an emergent behaviour, not a formula.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..data.loader import batch_iter, split_rounds
from ..models.graph import FEATURE_DTYPE_BYTES
from ..models.split import SplitModel
from ..nn.losses import cross_entropy
from ..nn.optim import Adam, Optimizer, SGD
from ..nn.tensor import Tensor, inference_mode


@dataclass
class EpochRecord:
    """One Tuner-side training epoch within one pipeline run."""

    run: int
    epoch: int
    loss: float
    images: int


@dataclass
class FinetuneReport:
    """What one FT-DMP fine-tuning job did."""

    num_runs: int
    split: int
    epochs: List[EpochRecord] = field(default_factory=list)
    #: bytes of features shipped PipeStores -> Tuner
    feature_bytes: int = 0
    #: images processed by the Store stage (feature extractions)
    images_extracted: int = 0
    #: accuracy trajectory if an eval function was supplied:
    #: (run, epoch, accuracy)
    accuracy_trace: List[Tuple[int, int, float]] = field(default_factory=list)
    #: PipeStores that were down when the Tuner tried to gather features
    skipped_stores: List[str] = field(default_factory=list)
    #: photos re-placed onto surviving stores after a mid-run crash and
    #: successfully extracted there (degraded-mode FT-DMP)
    photos_repartitioned: int = 0
    #: photos that could not be trained on this round (store lost and no
    #: re-placement possible) — the operator reruns after repair
    photos_deferred: int = 0

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("no epochs recorded")
        return self.epochs[-1].loss

    @property
    def degraded(self) -> bool:
        """Did any fault leave its mark on this fine-tuning round?"""
        return bool(self.skipped_stores or self.photos_deferred
                    or self.photos_repartitioned)

    # -- checkpoint (de)serialisation ---------------------------------------
    def to_dict(self) -> dict:
        return {
            "num_runs": self.num_runs,
            "split": self.split,
            "feature_bytes": self.feature_bytes,
            "images_extracted": self.images_extracted,
            "photos_repartitioned": self.photos_repartitioned,
            "photos_deferred": self.photos_deferred,
            "skipped_stores": list(self.skipped_stores),
            "accuracy_trace": [list(t) for t in self.accuracy_trace],
            "epochs": [
                {"run": e.run, "epoch": e.epoch, "loss": e.loss,
                 "images": e.images}
                for e in self.epochs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FinetuneReport":
        report = cls(num_runs=data["num_runs"], split=data["split"])
        report.feature_bytes = data["feature_bytes"]
        report.images_extracted = data["images_extracted"]
        report.photos_repartitioned = data["photos_repartitioned"]
        report.photos_deferred = data["photos_deferred"]
        report.skipped_stores = list(data["skipped_stores"])
        report.accuracy_trace = [tuple(t) for t in data["accuracy_trace"]]
        report.epochs = [EpochRecord(**e) for e in data["epochs"]]
        return report


def _make_optimizer(kind: str, params, lr: float) -> Optimizer:
    if kind == "adam":
        return Adam(params, lr=lr)
    if kind == "sgd":
        return SGD(params, lr=lr, momentum=0.9)
    raise ValueError(f"unknown optimizer {kind!r} (use 'adam' or 'sgd')")


class FTDMPTrainer:
    """Fine-tune a :class:`SplitModel` with the FT-DMP split.

    ``split`` defaults to the cut just before the classifier — the
    assignment the paper's APO converges to (trainable layers must stay on
    the Tuner).  Any earlier cut is allowed: the Tuner then runs the
    remaining frozen stages forward before its trainable tail.
    """

    def __init__(self, model: SplitModel, split: Optional[int] = None,
                 lr: float = 3e-3, batch_size: int = 64,
                 optimizer: str = "adam", seed: int = 0):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.model = model
        self.split = model.num_stages - 1 if split is None else split
        if not 0 <= self.split < model.num_stages:
            raise ValueError(
                f"split {self.split} must leave at least the classifier "
                f"on the Tuner (model has {model.num_stages} stages)"
            )
        self.batch_size = batch_size
        self.lr = lr
        self._optimizer_kind = optimizer
        self._rng = np.random.default_rng(seed)
        model.freeze_features()
        self._frozen_snapshot = self._frozen_state()

    # -- the Store side ------------------------------------------------------
    def extract_features(self, x: np.ndarray) -> np.ndarray:
        """Run the weight-freeze front (the PipeStore job) batch-wise.

        Identical to the inference forward pass (§2.1 C): eval mode, no
        gradient bookkeeping.
        """
        was_training = self.model.training
        self.model.eval()
        outputs = []
        with inference_mode():
            for start in range(0, len(x), self.batch_size):
                batch = Tensor(x[start:start + self.batch_size])
                outputs.append(
                    self.model.forward_until(batch, self.split).data)
        self.model.train(was_training)
        return np.concatenate(outputs, axis=0)

    # -- the Tuner side --------------------------------------------------------
    def train_tail(self, features: np.ndarray, labels: np.ndarray,
                   epochs: int, optimizer: Optimizer,
                   run_index: int = 0,
                   report: Optional[FinetuneReport] = None,
                   eval_fn: Optional[Callable[[], float]] = None) -> float:
        """Train the trainable tail on extracted features; returns last loss."""
        last_loss = float("nan")
        for epoch in range(epochs):
            losses = []
            for fb, yb in batch_iter(features, labels, self.batch_size, self._rng):
                logits = self.model.forward_from(Tensor(fb), self.split)
                loss = cross_entropy(logits, yb)
                self.model.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            last_loss = float(np.mean(losses))
            if report is not None:
                report.epochs.append(EpochRecord(
                    run=run_index, epoch=epoch, loss=last_loss,
                    images=len(features),
                ))
                if eval_fn is not None:
                    report.accuracy_trace.append(
                        (run_index, epoch, eval_fn())
                    )
        return last_loss

    # -- the full FT-DMP job -----------------------------------------------
    def finetune(self, x: np.ndarray, y: np.ndarray, epochs: int = 3,
                 num_runs: int = 1,
                 eval_fn: Optional[Callable[[], float]] = None,
                 ) -> FinetuneReport:
        """Run (optionally pipelined) FT-DMP fine-tuning over a dataset.

        ``num_runs`` splits the dataset into sub-datasets trained run by
        run (§5.2); each run starts from the previous run's weights, which
        is what lets the wall-clock pipeline overlap Store and Tuner
        stages — and what causes forgetting when runs get too small.
        """
        if len(x) != len(y):
            raise ValueError("x and y disagree on length")
        report = FinetuneReport(num_runs=num_runs, split=self.split)
        optimizer = _make_optimizer(
            self._optimizer_kind, self.model.classifier.parameters(), self.lr
        )
        for run_index, (x_run, y_run) in enumerate(split_rounds(x, y, num_runs)):
            features = self.extract_features(x_run)
            report.images_extracted += len(x_run)
            report.feature_bytes += features.size * FEATURE_DTYPE_BYTES
            self.train_tail(features, y_run, epochs, optimizer,
                            run_index=run_index, report=report, eval_fn=eval_fn)
        self.verify_frozen_unchanged()
        return report

    # -- invariants -------------------------------------------------------
    def _frozen_state(self) -> dict:
        state = {}
        for i in range(self.model.num_stages - 1):
            stage = self.model.stage(i)
            for name, param in stage.named_parameters(prefix=f"stage{i}."):
                state[name] = param.data.copy()
        return state

    def verify_frozen_unchanged(self) -> None:
        """Assert the weight-freeze layers were not touched by training."""
        for i in range(self.model.num_stages - 1):
            stage = self.model.stage(i)
            for name, param in stage.named_parameters(prefix=f"stage{i}."):
                if not np.array_equal(param.data, self._frozen_snapshot[name]):
                    raise AssertionError(
                        f"frozen parameter {name} changed during fine-tuning"
                    )
