"""RecoveryControlPlane — the cluster's repair brain, split out of
:class:`~repro.core.cluster.NDPipeCluster` (ROADMAP item 1).

Everything that decides how the fleet heals lives here: the bounded
upload journal, orphan re-ingest after a store crash, replica promotion,
store recover/reconcile, and the scrub-and-repair integrity sweep.  The
cluster object keeps thin delegators with the historical signatures and
owns the *data* plane (placement, ingest, serving, training); this class
owns the *control* plane and is what the HA layer (:mod:`repro.ha`)
drives from its failure detector instead of test code.

The split is a back-reference design: the control plane holds the
cluster and reaches through it for the fabric, database, replica map and
store roster, so there is exactly one copy of each piece of state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..durability.integrity import ClusterScrubReport
from ..faults.errors import TransientFaultError
from ..faults.retry import call_with_retry
from ..storage.objectstore import CorruptObjectError, MissingObjectError
from ..storage.photodb import LabelRecord
from .pipestore import PipeStore, StoredPhoto, StoreUnavailableError

#: one journalled upload: raw pixels + the user's training tag (if any)
JournalEntry = Tuple[np.ndarray, Optional[int]]


class RecoveryControlPlane:
    """Owns the upload journal and every failure-recovery path.

    This is the sole registration site for the journal and durability
    repair metric families (ND004); the cluster's ``__init__`` builds
    exactly one of these.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        config = cluster.config
        # the front end journals uploads (pixels + user tag) so photos
        # orphaned on a crashed store can be re-placed onto survivors.
        # The journal is bounded: entries whose photo left the database
        # are pruned, and ``journal_max_entries`` caps residency (oldest
        # entries fall out first) so raw pixel buffers cannot accumulate
        # for the lifetime of the cluster.
        self.journal: Optional[Dict[str, JournalEntry]]
        self.journal = {} if config.journal_uploads else None
        self._journal_max_entries = config.journal_max_entries
        metrics = cluster.metrics
        self._m_journal = metrics.gauge(
            "cluster_journal_entries", "upload-journal entries resident")
        self._m_journal_pruned = metrics.counter(
            "cluster_journal_pruned_total", "journal entries pruned",
            label_names=("reason",))
        self._m_replicas_promoted = metrics.counter(
            "durability_replicas_promoted_total",
            "replicas promoted to primary after losing the primary's store")
        self._m_repaired = metrics.counter(
            "durability_objects_repaired_total",
            "corrupt objects rewritten from a healthy replica",
            label_names=("store",))
        self._m_restored = metrics.counter(
            "durability_objects_restored_total",
            "lost objects re-fetched from a healthy replica",
            label_names=("store",))
        self._m_unrecoverable = metrics.counter(
            "durability_objects_unrecoverable_total",
            "damaged objects with no healthy replica anywhere",
            label_names=("store",))

    # -- upload journal -----------------------------------------------------
    @property
    def journal_size(self) -> int:
        """Entries currently resident in the upload journal."""
        return 0 if self.journal is None else len(self.journal)

    def journal_put(self, photo_id: str, pixels: np.ndarray,
                    train_label: Optional[int]) -> None:
        if self.journal is None:
            return
        self.journal[photo_id] = (pixels, train_label)
        cap = self._journal_max_entries
        if cap is not None and len(self.journal) > cap:
            # dict preserves insertion order: evict the oldest uploads
            overflow = len(self.journal) - cap
            for pid in list(self.journal)[:overflow]:
                del self.journal[pid]
            self._m_journal_pruned.inc(overflow, reason="capacity")
        self._m_journal.set(len(self.journal))

    def prune_journal(self) -> int:
        """Drop journal entries whose photo is gone from the database.

        The database is the single source of truth for placement; a photo
        that left it can never need re-ingestion, so its raw pixel buffer
        has no business staying resident.  Returns how many entries were
        dropped.  Called automatically by :meth:`reconcile`.
        """
        if self.journal is None:
            return 0
        database = self.cluster.database
        stale = [pid for pid in self.journal if pid not in database]
        for pid in stale:
            del self.journal[pid]
        if stale:
            self._m_journal_pruned.inc(len(stale), reason="departed")
        self._m_journal.set(len(self.journal))
        return len(stale)

    def restore_journal(self,
                        journal: Optional[Dict[str, JournalEntry]]) -> None:
        """Adopt a checkpointed journal (no-op when journalling is off)."""
        if self.journal is not None and journal is not None:
            self.journal = journal
        self._m_journal.set(self.journal_size)

    # -- failure recovery ---------------------------------------------------
    def reingest_orphans(self, store_id: str,
                         only: Optional[Sequence[str]] = None) -> List[str]:
        """Re-place journalled photos stranded on a crashed store.

        Photos whose upload is still in the front end's journal are
        re-preprocessed and landed on healthy stores; their database
        records move with them (same label, same model version).  Returns
        the ids that actually moved — anything not journalled (or not
        placeable right now) stays orphaned until the store repairs.
        """
        if self.journal is None:
            return []
        cluster = self.cluster
        moved: List[str] = []
        candidates = (cluster.database.ids_at(store_id) if only is None
                      else list(only))
        with cluster.tracer.span("cluster.reingest_orphans", store=store_id,
                                 candidates=len(candidates)):
            for pid in candidates:
                if pid not in cluster.database:
                    continue
                record = cluster.database.lookup(pid)
                if record.location != store_id:
                    continue  # already moved
                # cheapest recovery first: a healthy replica already holds
                # the blobs and label, so promotion moves zero bytes
                if self._promote_replica(pid, record, store_id):
                    moved.append(pid)
                    continue
                if self.journal is None or pid not in self.journal:
                    continue
                pixels, train_label = self.journal[pid]
                photo = StoredPhoto(
                    photo_id=pid, pixels=pixels,
                    preprocessed=cluster.inference_server.preprocess(pixels),
                    train_label=train_label,
                )
                try:
                    target = cluster._place_photo(photo, kind="re-ingest")
                except StoreUnavailableError:
                    continue
                cluster.database.upsert(LabelRecord(
                    photo_id=pid, label=record.label,
                    model_version=record.model_version,
                    location=target.store_id, confidence=record.confidence,
                ))
                old_holders = cluster.replicas.holders(pid)
                cluster.replicas.place(pid, [target.store_id] + [
                    h for h in old_holders
                    if h not in (store_id, target.store_id)
                ])
                moved.append(pid)
        return moved

    def _promote_replica(self, pid: str, record: LabelRecord,
                         lost_store_id: str) -> Optional[str]:
        """Make a healthy replica the authoritative copy of one photo.

        The crashed store stays in the holder list: its blobs survive the
        outage, so on recovery it resumes replica duty (and a scrub
        re-fetches anything that did not survive)."""
        cluster = self.cluster
        for holder in cluster.replicas.holders(pid):
            if holder == lost_store_id:
                continue
            try:
                candidate = cluster._resolve_store(holder)
            except KeyError:
                continue
            if not candidate.is_available:
                continue
            if not candidate.objects.exists(candidate.objects.raw_key(pid)):
                continue
            cluster.database.upsert(LabelRecord(
                photo_id=pid, label=record.label,
                model_version=record.model_version,
                location=holder, confidence=record.confidence,
            ))
            holders = cluster.replicas.holders(pid)
            holders.remove(holder)
            cluster.replicas.place(pid, [holder] + holders)
            self._m_replicas_promoted.inc()
            return holder
        return None

    def recover(self, store: Union[str, PipeStore]) -> PipeStore:
        """Bring a crashed store back: repair, resync the model replica it
        missed, and evict any photo the cluster re-placed elsewhere while
        it was down (the database location is authoritative)."""
        cluster = self.cluster
        store = cluster._resolve_store(store)
        with cluster.tracer.span("cluster.recover", store=store.store_id):
            store.repair()
            store.slowdown = 1.0
            cluster.tuner.catch_up(store)
            self.reconcile(store)
        return store

    def reconcile(self, store: Union[str, PipeStore]) -> List[str]:
        """Drop a store's photos whose authoritative location moved away.

        Replica copies are not orphans: a photo stays if the store is in
        its holder list, even when the database points elsewhere."""
        cluster = self.cluster
        store = cluster._resolve_store(store)
        evicted = []
        for pid in store.photo_ids():
            if pid in cluster.database:
                record = cluster.database.lookup(pid)
                if (record.location == store.store_id
                        or cluster.replicas.is_holder(pid, store.store_id)):
                    continue
            store.evict_photo(pid)
            cluster.replicas.remove_holder(pid, store.store_id)
            evicted.append(pid)
        self.prune_journal()
        return evicted

    # -- integrity: scrub and replica repair --------------------------------
    def scrub_and_repair(self) -> ClusterScrubReport:
        """CRC-sweep every available store; heal damage from replicas.

        Two kinds of damage are repaired: objects whose bytes rotted in
        place (scrub finds a CRC mismatch) and objects lost outright
        (expected by the replica map but absent).  Both are re-fetched
        from the first healthy holder over the fabric; objects with no
        healthy copy anywhere are reported — and counted — as
        unrecoverable rather than silently dropped.
        """
        cluster = self.cluster
        report = ClusterScrubReport()
        with cluster.tracer.span("cluster.scrub_and_repair"):
            for store in cluster.stores:
                if not store.is_available:
                    report.stores_skipped.append(store.store_id)
                    continue
                scrub = store.scrub()
                report.scrubs.append(scrub)
                for key in scrub.corrupt_keys:
                    if self._repair_object(store, key):
                        report.repaired.append((store.store_id, key))
                        self._m_repaired.inc(store=store.store_id)
                    else:
                        report.unrecoverable.append((store.store_id, key))
                        self._m_unrecoverable.inc(store=store.store_id)
                self._restore_missing(store, report)
        return report

    def _restore_missing(self, store: PipeStore,
                         report: ClusterScrubReport) -> None:
        """Re-fetch objects the replica map expects on a store but that
        vanished (crash-lost media), including their training labels."""
        cluster = self.cluster
        for pid in cluster.replicas.photos_on(store.store_id):
            for key in (store.objects.raw_key(pid),
                        store.objects.preproc_key(pid)):
                if store.objects.exists(key):
                    continue
                if self._repair_object(store, key):
                    report.restored.append((store.store_id, key))
                    self._m_restored.inc(store=store.store_id)
                else:
                    report.unrecoverable.append((store.store_id, key))
                    self._m_unrecoverable.inc(store=store.store_id)
            if not store.has_train_label(pid):
                for holder in cluster.replicas.holders(pid):
                    if holder == store.store_id:
                        continue
                    try:
                        donor = cluster._resolve_store(holder)
                    except KeyError:
                        continue
                    if donor.is_available and donor.has_train_label(pid):
                        store.set_train_label(pid, donor.train_label(pid))
                        break

    def _repair_object(self, target: PipeStore, key: str) -> bool:
        """Overwrite one damaged object with a verified replica copy."""
        cluster = self.cluster
        pid = key.split("/", 1)[1] if "/" in key else key
        for holder in cluster.replicas.holders(pid):
            if holder == target.store_id:
                continue
            try:
                donor = cluster._resolve_store(holder)
            except KeyError:
                continue
            if not donor.is_available:
                continue
            try:
                blob = donor.donate_object(key)
            except (CorruptObjectError, MissingObjectError,
                    StoreUnavailableError):
                continue  # this holder cannot vouch for its copy
            try:
                call_with_retry(
                    lambda b=blob, h=holder: cluster.network.send(
                        h, target.store_id, len(b), "repair"),
                    cluster.retry)
            except TransientFaultError:
                continue
            target.accept_repair(key, blob)
            return True
        return False
