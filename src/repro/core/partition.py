"""FindBestPoint: partition-point evaluation for FT-DMP fine-tuning (§5.3).

Given a model graph, the PipeStore and Tuner accelerator specs, the network
bandwidth, and the number of participating PipeStores, this module predicts
for every partitionable cut:

* the Store-stage time (NPE-pipelined: disk -> decompress -> FE),
* the feature-transfer time through the Tuner's NIC,
* the Tuner-stage time (training the remaining stages),
* the weight-synchronisation time if trainable layers were offloaded
  (the +FC pathology of Fig. 9),

and picks the cut minimising estimated training time.  This is the
``FindBestPoint()`` subroutine of Algorithm 1; :mod:`repro.core.apo` loops
it over PipeStore counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..models.graph import ModelGraph, PartitionPoint
from ..sim.specs import (
    COMPRESSED_PREPROCESSED_BYTES,
    AcceleratorSpec,
    CpuSpec,
    DiskSpec,
    NetworkSpec,
    ST1_RAID,
    STORAGE_CPU,
)


@dataclass(frozen=True)
class FinetunePlanConfig:
    """Operating parameters of one fine-tuning job."""

    dataset_images: int = 1_200_000
    #: per-PipeStore feature-extraction batch (paper trains at 512)
    batch_size: int = 512
    #: pipelined FT-DMP run count (§5.2); 1 = unpipelined
    num_runs: int = 3
    #: epochs the Tuner trains over the (cached) features
    tuner_epochs: int = 1
    #: CPU cores each PipeStore may spend on decompression (§5.4)
    decompress_cores: int = 2

    def __post_init__(self):
        if self.dataset_images <= 0:
            raise ValueError("dataset_images must be positive")
        if self.num_runs < 1:
            raise ValueError("num_runs must be >= 1")
        if self.num_runs > self.dataset_images:
            raise ValueError("more pipeline runs than images")


@dataclass(frozen=True)
class PartitionEvaluation:
    """Predicted behaviour of fine-tuning at one cut point."""

    point: PartitionPoint
    num_pipestores: int
    #: aggregate Store-stage throughput (images/s across all PipeStores)
    store_rate_ips: float
    #: feature-transfer capacity through the Tuner NIC (images/s)
    transfer_rate_ips: float
    #: Tuner-stage training throughput (images/s)
    tuner_rate_ips: float
    #: end-to-end training time including pipelining (seconds)
    training_time_s: float
    #: Store-stage time if it ran alone (seconds)
    store_time_s: float
    #: Tuner-stage time if it ran alone (seconds)
    tuner_time_s: float
    #: feature bytes shipped over the network for the whole job
    feature_traffic_bytes: float
    #: weight-synchronisation bytes (non-zero only past the classifier)
    sync_traffic_bytes: float
    #: extra seconds spent synchronising weights
    sync_time_s: float

    @property
    def total_traffic_bytes(self) -> float:
        return self.feature_traffic_bytes + self.sync_traffic_bytes

    @property
    def stage_imbalance_s(self) -> float:
        """|T_ps - T_tuner| — what Algorithm 1 minimises across store counts."""
        return abs(self.store_time_s - self.tuner_time_s)


def store_stage_rate(graph: ModelGraph, split: int, accelerator: AcceleratorSpec,
                     config: FinetunePlanConfig,
                     disk: DiskSpec = ST1_RAID,
                     cpu: CpuSpec = STORAGE_CPU) -> float:
    """One PipeStore's NPE-pipelined feature-extraction rate (images/s).

    The 3-stage NPE pipeline (§5.4) overlaps disk reads of compressed
    preprocessed binaries, CPU decompression, and accelerator FE, so the
    rate is the bottleneck stage.
    """
    read_rate = disk.read_ips(COMPRESSED_PREPROCESSED_BYTES)
    decompress_rate = cpu.decompress_ips(
        config.decompress_cores, COMPRESSED_PREPROCESSED_BYTES
    )
    fe_rate = accelerator.fe_ips(graph, split, config.batch_size, training=True)
    return min(read_rate, decompress_rate, fe_rate)


def pipelined_time(store_time: float, tuner_time: float, num_runs: int) -> float:
    """Makespan of the §5.2 two-stage pipeline split into ``num_runs`` runs.

    Run boundaries synchronise the stages, so with per-run times
    ``s = store_time / R`` and ``t = tuner_time / R``::

        T = s + (R - 1) * max(s, t) + t

    ``R = 1`` degenerates to the unpipelined serial sum (Fig. 10a).
    """
    if num_runs < 1:
        raise ValueError("num_runs must be >= 1")
    per_store = store_time / num_runs
    per_tuner = tuner_time / num_runs
    return per_store + (num_runs - 1) * max(per_store, per_tuner) + per_tuner


def evaluate_partition(graph: ModelGraph, split: int, num_pipestores: int,
                       store_accel: AcceleratorSpec,
                       tuner_accel: AcceleratorSpec,
                       network: NetworkSpec,
                       config: Optional[FinetunePlanConfig] = None,
                       tuner_gpus: int = 1) -> PartitionEvaluation:
    """Predict fine-tuning behaviour with ``split`` stages on PipeStores."""
    config = config or FinetunePlanConfig()
    if num_pipestores < 1:
        raise ValueError("need at least one PipeStore")
    if tuner_gpus < 1:
        raise ValueError("the Tuner needs at least one GPU")
    point = graph.partition_point(split)
    images = config.dataset_images

    per_store = store_stage_rate(graph, split, store_accel, config)
    aggregate_store = per_store * num_pipestores
    transfer_rate = network.transfer_ips(point.feature_bytes)
    # the Store stage and the feature stream into the Tuner overlap; the
    # slower of the two feeds the Tuner
    supply_rate = min(aggregate_store, transfer_rate)
    tuner_rate = tuner_gpus * tuner_accel.tail_train_ips(graph, split)

    store_time = images / supply_rate
    tuner_time = config.tuner_epochs * images / tuner_rate

    feature_traffic = float(images) * point.feature_bytes

    # weight sync: parameter-server rounds whenever trainable layers run on
    # PipeStores.  The global batch is fixed, so every store ships
    # up-gradients and receives down-weights each iteration — total sync
    # traffic grows linearly with the store count, exactly the §4.1
    # scaling pathology.
    sync_traffic = 0.0
    sync_time = 0.0
    if point.sync_bytes:
        iterations = images / config.batch_size
        sync_traffic = iterations * 2.0 * point.sync_bytes * num_pipestores
        sync_time = network.transfer_time(sync_traffic)

    total_time = pipelined_time(store_time, tuner_time, config.num_runs) + sync_time
    return PartitionEvaluation(
        point=point,
        num_pipestores=num_pipestores,
        store_rate_ips=aggregate_store,
        transfer_rate_ips=transfer_rate,
        tuner_rate_ips=tuner_rate,
        training_time_s=total_time,
        store_time_s=store_time,
        tuner_time_s=tuner_time,
        feature_traffic_bytes=feature_traffic,
        sync_traffic_bytes=sync_traffic,
        sync_time_s=sync_time,
    )


def find_best_point(graph: ModelGraph, num_pipestores: int,
                    store_accel: AcceleratorSpec,
                    tuner_accel: AcceleratorSpec,
                    network: NetworkSpec,
                    config: Optional[FinetunePlanConfig] = None,
                    tuner_gpus: int = 1) -> PartitionEvaluation:
    """The paper's ``FindBestPoint``: the cut with the shortest training time.

    Cuts that offload trainable layers are admissible candidates (the
    algorithm evaluates them) but lose on sync cost; to 'prevent weight
    synchronization among the PipeStores, the trainable layer is assigned
    to the Tuner' — which the cost model enforces naturally.
    """
    evaluations = evaluate_all_points(
        graph, num_pipestores, store_accel, tuner_accel, network, config,
        tuner_gpus,
    )
    return min(evaluations, key=lambda e: e.training_time_s)


def evaluate_all_points(graph: ModelGraph, num_pipestores: int,
                        store_accel: AcceleratorSpec,
                        tuner_accel: AcceleratorSpec,
                        network: NetworkSpec,
                        config: Optional[FinetunePlanConfig] = None,
                        tuner_gpus: int = 1) -> List[PartitionEvaluation]:
    """Evaluate every partitionable cut (the Fig. 9 sweep)."""
    return [
        evaluate_partition(graph, split, num_pipestores, store_accel,
                           tuner_accel, network, config, tuner_gpus)
        for split in range(graph.num_partition_points())
    ]
