"""PipeStore — a storage server with a commodity accelerator (§5).

A PipeStore stores photos (raw blob + deflate-compressed preprocessed
binary, §5.4), holds a replica of the weight-freeze model front, and runs
the two near-data jobs: feature extraction for FT-DMP fine-tuning and
whole-model offline inference.  Model updates arrive as Check-N-Run deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..durability.integrity import ScrubReport
from ..fastpath import flags
from ..faults.errors import StaleEpochError
from ..lint.contracts import fenced_by
from ..models.split import SplitModel
from ..nn.tensor import Tensor, inference_mode
from ..obs.metrics import MetricsRegistry
from ..storage.compression import deflate, inflate
from ..storage.imageformat import (
    decode_preprocessed,
    decode_preprocessed_into,
    encode_photo,
    encode_preprocessed,
)
from ..storage.objectstore import MissingObjectError, ObjectStore
from . import checknrun


class StoreUnavailableError(RuntimeError):
    """Raised when a job is dispatched to a failed PipeStore."""


@dataclass(frozen=True)
class StoredPhoto:
    """What ingestion hands a PipeStore for one photo."""

    photo_id: str
    pixels: np.ndarray  # (3, H, W) floats in [0, 1]
    preprocessed: np.ndarray  # fp32 model input
    train_label: Optional[int] = None  # supervision (user tags), if any


#: accounted accelerator seconds per image at slowdown 1.0 — the fabric
#: accounts bytes instead of moving packets; PipeStores likewise account
#: nominal compute seconds so degraded-fleet benchmarks have a clock
NOMINAL_SECONDS_PER_IMAGE = 1e-3


@fenced_by("_fence", "model", "split", "model_version")
class PipeStore:
    """One computational storage server.

    The model replica is epoch-fenced state: every mutation of
    ``model``/``split``/``model_version`` must sit behind a
    :meth:`_fence` check (the :class:`~repro.faults.errors.StaleEpochError`
    split-brain guard), and ND007 proves the dominance on every path —
    a deposed primary's update cannot reach the replica even on a
    branch no chaos test happens to execute.
    """

    def __init__(self, store_id: str, nominal_raw_bytes: int = 8192,
                 batch_size: int = 128):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.store_id = store_id
        self.objects = ObjectStore(name=store_id)
        self.batch_size = batch_size
        self.nominal_raw_bytes = nominal_raw_bytes
        self.model: Optional[SplitModel] = None
        self.model_version = -1
        #: highest Tuner epoch whose updates this store has accepted —
        #: the fencing token that keeps a deposed primary from writing
        self.accepted_epoch = 0
        self.split: int = 0
        self._train_labels: Dict[str, int] = {}
        self._failed = False
        #: accelerator degradation factor (fault injection); 1.0 = healthy
        self.slowdown = 1.0
        #: accounted accelerator busy seconds across near-data jobs
        self.busy_seconds = 0.0
        self._metrics: Optional[MetricsRegistry] = None

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Report storage and near-data-job activity into a registry."""
        self._metrics = metrics
        self._m_stored = metrics.counter(
            "pipestore_photos_stored_total", "photos ingested per store",
            label_names=("store",))
        self._m_stored_bytes = metrics.counter(
            "pipestore_bytes_stored_total",
            "raw + preprocessed bytes persisted per store",
            label_names=("store",))
        self._m_evicted = metrics.counter(
            "pipestore_photos_evicted_total",
            "photos dropped after re-placement elsewhere",
            label_names=("store",))
        self._m_extracted = metrics.counter(
            "pipestore_features_extracted_total",
            "images run through the frozen front (FT-DMP Store stage)",
            label_names=("store",))
        self._m_relabelled = metrics.counter(
            "pipestore_photos_relabelled_total",
            "images run through whole-model offline inference",
            label_names=("store",))
        self._m_model_updates = metrics.counter(
            "pipestore_model_updates_total",
            "model replica updates applied, by mechanism",
            label_names=("store", "mechanism"))
        self._m_busy = metrics.counter(
            "pipestore_busy_seconds_total",
            "accounted accelerator seconds per store",
            label_names=("store",))
        self._m_scrubbed = metrics.counter(
            "pipestore_objects_scrubbed_total",
            "objects CRC-checked by scrub passes",
            label_names=("store",))
        self._m_corrupt = metrics.counter(
            "pipestore_corrupt_objects_total",
            "objects a scrub found failing their CRC32",
            label_names=("store",))

    def _count(self, counter_name: str, amount: float = 1.0) -> None:
        if self._metrics is not None:
            getattr(self, counter_name).inc(amount, store=self.store_id)

    # -- fault injection ----------------------------------------------------
    @property
    def is_available(self) -> bool:
        return not self._failed

    def fail(self) -> None:
        """Take the server down (fault injection for resilience tests)."""
        self._failed = True

    def repair(self) -> None:
        """Bring the server back; its storage and model replica survive."""
        self._failed = False

    def _require_available(self) -> None:
        if self._failed:
            raise StoreUnavailableError(f"{self.store_id} is down")

    # -- storage path -------------------------------------------------------
    def store_photo(self, photo: StoredPhoto) -> int:
        """Persist raw blob + compressed preprocessed binary; returns bytes."""
        self._require_available()
        raw_blob = encode_photo(photo.pixels, pad_to_bytes=self.nominal_raw_bytes)
        pre_blob = deflate(encode_preprocessed(photo.preprocessed))
        self.objects.put(self.objects.raw_key(photo.photo_id), raw_blob)
        self.objects.put(self.objects.preproc_key(photo.photo_id), pre_blob)
        if photo.train_label is not None:
            self._train_labels[photo.photo_id] = photo.train_label
        stored = len(raw_blob) + len(pre_blob)
        self._count("_m_stored")
        self._count("_m_stored_bytes", stored)
        return stored

    def load_preprocessed(self, photo_id: str) -> np.ndarray:
        """Read + inflate + decode one preprocessed binary."""
        blob = self.objects.get(self.objects.preproc_key(photo_id))
        return decode_preprocessed(inflate(blob))

    def photo_ids(self) -> List[str]:
        return self.objects.photo_ids()

    def labeled_photo_ids(self) -> List[str]:
        return sorted(self._train_labels)

    def has_train_label(self, photo_id: str) -> bool:
        return photo_id in self._train_labels

    def train_labels(self) -> Dict[str, int]:
        """A copy of every training label (checkpoint / repair donor)."""
        return dict(self._train_labels)

    def set_train_label(self, photo_id: str, label: int) -> None:
        """Reinstate one training label (restore / replication repair)."""
        self._train_labels[photo_id] = int(label)

    def train_label(self, photo_id: str) -> int:
        try:
            return self._train_labels[photo_id]
        except KeyError:
            raise MissingObjectError(
                f"{photo_id} has no training label on {self.store_id}"
            ) from None

    def evict_photo(self, photo_id: str) -> None:
        """Drop one photo's blobs and label (after re-placement elsewhere)."""
        for key in (self.objects.raw_key(photo_id),
                    self.objects.preproc_key(photo_id)):
            if self.objects.exists(key):
                self.objects.delete(key)
        self._train_labels.pop(photo_id, None)
        self._count("_m_evicted")

    # -- durability ----------------------------------------------------------
    def scrub(self) -> ScrubReport:
        """CRC-sweep every stored object; report what rotted.

        Reads go through the unaccounted ``peek`` path, so a scrub never
        perturbs the workload IO counters the experiments assert on.
        """
        self._require_available()
        report = ScrubReport(store_id=self.store_id)
        for key in self.objects.keys():
            report.objects_checked += 1
            if not self.objects.verify(key):
                report.corrupt_keys.append(key)
        self._count("_m_scrubbed", report.objects_checked)
        if report.corrupt_keys:
            self._count("_m_corrupt", len(report.corrupt_keys))
        return report

    def donate_object(self, key: str) -> bytes:
        """Serve a verified copy of one object for replication repair.

        Raises :class:`~repro.storage.objectstore.CorruptObjectError` if
        this replica is itself rotten — repair then tries the next holder.
        """
        self._require_available()
        # ndlint: allow[ND002] -- repair donor reads are maintenance traffic
        return self.objects.peek(key, verify=True)

    def accept_repair(self, key: str, blob: bytes) -> None:
        """Overwrite one object with a healthy donor copy (fresh CRC)."""
        self._require_available()
        self.objects.put(key, blob)

    # -- model management ----------------------------------------------------
    def _fence(self, epoch: int) -> None:
        """Reject updates from a deposed primary (split-brain guard)."""
        if epoch < self.accepted_epoch:
            raise StaleEpochError(
                f"{self.store_id}: update stamped epoch {epoch} but this "
                f"store already accepted epoch {self.accepted_epoch}"
            )
        self.accepted_epoch = epoch

    def install_model(self, model: SplitModel, split: int, version: int,
                      epoch: int = 0) -> None:
        """Install a full model replica (the initial distribution)."""
        if not 0 <= split <= model.num_stages:
            raise ValueError(f"split {split} out of range")
        self._fence(epoch)
        self.model = model
        self.split = split
        self.model_version = version
        self.model.eval()
        if self._metrics is not None:
            self._m_model_updates.inc(store=self.store_id, mechanism="full")

    def apply_full_state(self, state: Dict[str, np.ndarray],
                         version: int, epoch: int = 0) -> None:
        """Load a full-model resync into the local replica."""
        self._require_model()
        self._fence(epoch)
        self.model.load_state_dict(state)
        self.model_version = version
        if self._metrics is not None:
            self._m_model_updates.inc(store=self.store_id, mechanism="full")

    def apply_model_delta(self, blob: bytes, version: int,
                          epoch: int = 0) -> None:
        """Apply a Check-N-Run delta to the local replica."""
        if self.model is None:
            raise RuntimeError(f"{self.store_id}: no model installed yet")
        self._fence(epoch)
        if version <= self.model_version:
            raise ValueError(
                f"{self.store_id}: delta v{version} not newer than "
                f"v{self.model_version}"
            )
        new_state = checknrun.apply_delta(self.model.state_dict(), blob)
        self.model.load_state_dict(new_state)
        self.model_version = version
        if self._metrics is not None:
            self._m_model_updates.inc(store=self.store_id, mechanism="delta")

    # -- near-data jobs --------------------------------------------------------
    def extract_features(self, photo_ids: Sequence[str]) -> np.ndarray:
        """The Store-stage of FT-DMP: frozen-front forward over local data."""
        self._require_available()
        self._require_model()
        inputs = self._load_batch(photo_ids)
        outputs = []
        with inference_mode():
            for start in range(0, len(inputs), self.batch_size):
                batch = Tensor(inputs[start:start + self.batch_size])
                outputs.append(self.model.forward_until(batch, self.split).data)
        self._account_compute(len(inputs))
        self._count("_m_extracted", len(inputs))
        return np.concatenate(outputs, axis=0)

    def offline_infer(self, photo_ids: Sequence[str]) -> Dict[str, Tuple[int, float]]:
        """Whole-model inference over local photos; returns id -> (label, conf)."""
        self._require_available()
        self._require_model()
        inputs = self._load_batch(photo_ids)
        results: Dict[str, Tuple[int, float]] = {}
        for start in range(0, len(inputs), self.batch_size):
            chunk_ids = photo_ids[start:start + self.batch_size]
            with inference_mode():
                logits = self.model(
                    Tensor(inputs[start:start + self.batch_size])).data
            shifted = logits - logits.max(axis=-1, keepdims=True)
            probs = np.exp(shifted)
            probs /= probs.sum(axis=-1, keepdims=True)
            labels = probs.argmax(axis=-1)
            for row, pid in enumerate(chunk_ids):
                label = int(labels[row])
                results[pid] = (label, float(probs[row, label]))
        self._account_compute(len(inputs))
        self._count("_m_relabelled", len(inputs))
        return results

    # -- internals ----------------------------------------------------------
    def _account_compute(self, num_images: int) -> None:
        seconds = num_images * NOMINAL_SECONDS_PER_IMAGE * self.slowdown
        self.busy_seconds += seconds
        self._count("_m_busy", seconds)

    def _require_model(self) -> None:
        if self.model is None:
            raise RuntimeError(f"{self.store_id}: no model installed")

    def _load_batch(self, photo_ids: Sequence[str]) -> np.ndarray:
        if not photo_ids:
            raise ValueError("no photo ids given")
        if not flags().batch_decode:
            return np.stack([self.load_preprocessed(pid) for pid in photo_ids])
        # decode straight into one preallocated (N, C, H, W) array: one
        # payload copy per photo instead of decode + copy + np.stack
        first = self.load_preprocessed(photo_ids[0])
        out = np.empty((len(photo_ids),) + first.shape, dtype=first.dtype)
        out[0] = first
        for row, pid in enumerate(photo_ids[1:], start=1):
            blob = self.objects.get(self.objects.preproc_key(pid))
            decode_preprocessed_into(inflate(blob), out[row])
        return out
