"""APO — Automated model Partitioning and Organization (Algorithm 1).

APO sweeps the PipeStore count from 1 to ``max_pipestores``, calls
``FindBestPoint`` for each, and returns the count whose Store-stage and
Tuner-stage times are closest (minimal pipeline bubble).  It also exposes
the full sweep with energy efficiency so the Fig. 11 trade-off (training
time vs IPS/kJ) can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..models.graph import ModelGraph
from ..sim.power import PowerDraw, server_power
from ..sim.specs import (
    G4DN_4XLARGE,
    NetworkSpec,
    P3_2XLARGE,
    ServerSpec,
    TEN_GBE,
)
from .partition import (
    FinetunePlanConfig,
    PartitionEvaluation,
    find_best_point,
)


@dataclass(frozen=True)
class OrganizationCandidate:
    """One point of the APO sweep: a store count plus its best partition."""

    num_pipestores: int
    evaluation: PartitionEvaluation
    power: PowerDraw
    energy_kj: float
    ips_per_kj: float

    @property
    def training_time_s(self) -> float:
        return self.evaluation.training_time_s

    @property
    def stage_imbalance_s(self) -> float:
        return self.evaluation.stage_imbalance_s


@dataclass(frozen=True)
class OrganizationPlan:
    """APO's output: the chosen store count, cut point, and the sweep."""

    best: OrganizationCandidate
    candidates: List[OrganizationCandidate]

    @property
    def num_pipestores(self) -> int:
        return self.best.num_pipestores

    @property
    def split(self) -> int:
        return self.best.evaluation.point.index

    @property
    def split_label(self) -> str:
        return self.best.evaluation.point.label

    def most_energy_efficient(self) -> OrganizationCandidate:
        """The Fig. 15/16 'BEST' operating point (max training IPS/kJ)."""
        return max(self.candidates, key=lambda c: c.ips_per_kj)


def _candidate_power(num_pipestores: int, store_server: ServerSpec,
                     tuner_server: ServerSpec,
                     evaluation: PartitionEvaluation,
                     config: FinetunePlanConfig) -> PowerDraw:
    """Average fleet power during the fine-tuning job.

    PipeStores run their accelerator, the decompression cores, and the
    disk; the Tuner runs its GPU at the utilisation implied by the stage
    imbalance (an oversubscribed Tuner idles waiting for features and
    vice versa).
    """
    job_time = max(evaluation.training_time_s, 1e-9)
    store_util = min(1.0, evaluation.store_time_s / job_time)
    tuner_util = min(1.0, evaluation.tuner_time_s / job_time)
    store_draw = server_power(
        store_server, gpu_util=store_util,
        active_cores=config.decompress_cores, disk_active=True,
    ).scaled(num_pipestores)
    tuner_draw = server_power(tuner_server, gpu_util=tuner_util, active_cores=2)
    return store_draw + tuner_draw


def plan_organization(graph: ModelGraph,
                      max_pipestores: int = 20,
                      store_server: ServerSpec = G4DN_4XLARGE,
                      tuner_server: ServerSpec = P3_2XLARGE,
                      network: NetworkSpec = TEN_GBE,
                      config: Optional[FinetunePlanConfig] = None,
                      ) -> OrganizationPlan:
    """Run Algorithm 1: pick N_ps minimising |T_ps - T_tuner|.

    Mirrors the paper's pseudo-code: iterate ``N_ps`` from 1 to
    ``N_max``, call ``FindBestPoint`` for each, track the minimum stage
    imbalance, and return the winning organisation (plus the whole sweep,
    which Fig. 11 plots).
    """
    if max_pipestores < 1:
        raise ValueError("max_pipestores must be >= 1")
    if not store_server.has_accelerator:
        raise ValueError("PipeStore server needs an accelerator")
    if not tuner_server.has_accelerator:
        raise ValueError("Tuner server needs an accelerator")
    config = config or FinetunePlanConfig()

    candidates: List[OrganizationCandidate] = []
    best_candidate: Optional[OrganizationCandidate] = None
    min_imbalance = float("inf")
    for num_ps in range(1, max_pipestores + 1):
        evaluation = find_best_point(
            graph, num_ps, store_server.accelerator, tuner_server.accelerator,
            network, config, tuner_gpus=tuner_server.accelerator_count,
        )
        power = _candidate_power(num_ps, store_server, tuner_server,
                                 evaluation, config)
        energy_kj = power.total_watts * evaluation.training_time_s / 1e3
        candidate = OrganizationCandidate(
            num_pipestores=num_ps,
            evaluation=evaluation,
            power=power,
            energy_kj=energy_kj,
            ips_per_kj=config.dataset_images / energy_kj,
        )
        candidates.append(candidate)
        if candidate.stage_imbalance_s < min_imbalance:
            min_imbalance = candidate.stage_imbalance_s
            best_candidate = candidate

    assert best_candidate is not None
    return OrganizationPlan(best=best_candidate, candidates=candidates)
