"""Drift detection and maintenance policies (§2.2).

The paper surveys how production systems decide *when* to retrain:
regularly scheduled updates versus detection-triggered ones (citing the
early-drift-detection literature).  NDPipe makes fine-tuning cheap enough
for aggressive schedules; these utilities let the reproduction compare the
policies quantitatively:

* :class:`PageHinkley` — the classic streaming mean-shift detector over a
  model-quality signal (error rate or confidence);
* :class:`AccuracyWindowDetector` — trigger when a sliding-window accuracy
  estimate falls a threshold below the post-deployment baseline;
* :class:`MaintenancePolicy` implementations that decide, day by day,
  whether to fine-tune.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional


class PageHinkley:
    """Page-Hinkley test for upward mean shift in a loss/error stream."""

    def __init__(self, delta: float = 0.005, threshold: float = 0.5,
                 min_samples: int = 30):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.delta = delta
        self.threshold = threshold
        self.min_samples = min_samples
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float) -> bool:
        """Feed one observation; True when drift is detected."""
        self._count += 1
        self._mean += (value - self._mean) / self._count
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        if self._count < self.min_samples:
            return False
        return (self._cumulative - self._minimum) > self.threshold

    @property
    def statistic(self) -> float:
        return self._cumulative - self._minimum


class AccuracyWindowDetector:
    """Trigger when windowed accuracy drops ``tolerance`` below baseline."""

    def __init__(self, window: int = 50, tolerance: float = 0.05):
        if window < 1:
            raise ValueError("window must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.window = window
        self.tolerance = tolerance
        self._correct: Deque[bool] = deque(maxlen=window)
        self.baseline: Optional[float] = None

    def update(self, correct: bool) -> bool:
        """Feed one prediction outcome; True when drift is detected."""
        self._correct.append(bool(correct))
        if len(self._correct) < self.window:
            return False
        rate = sum(self._correct) / len(self._correct)
        if self.baseline is None:
            self.baseline = rate
            return False
        return rate < self.baseline - self.tolerance

    def rearm(self) -> None:
        """Reset after maintenance so the new model sets a new baseline."""
        self._correct.clear()
        self.baseline = None


# ---------------------------------------------------------------------------
# Maintenance policies
# ---------------------------------------------------------------------------
@dataclass
class MaintenanceLog:
    """What a policy did over a drift horizon."""

    policy: str
    triggered_days: List[int] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def num_updates(self) -> int:
        return len(self.triggered_days)

    @property
    def mean_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError("no accuracies recorded")
        return float(sum(self.accuracies) / len(self.accuracies))


class MaintenancePolicy:
    """Decides each day whether to run a fine-tuning round."""

    name = "base"

    def should_update(self, day: int, accuracy: float) -> bool:
        raise NotImplementedError

    def notify_updated(self, day: int) -> None:
        """Called after an update actually ran."""


class ScheduledPolicy(MaintenancePolicy):
    """Fine-tune every ``period_days`` regardless of observed quality."""

    def __init__(self, period_days: int = 2):
        if period_days < 1:
            raise ValueError("period must be >= 1 day")
        self.name = f"scheduled-every-{period_days}d"
        self.period_days = period_days
        self._last_update = 0

    def should_update(self, day: int, accuracy: float) -> bool:
        return day > 0 and day - self._last_update >= self.period_days

    def notify_updated(self, day: int) -> None:
        self._last_update = day


class DetectionPolicy(MaintenancePolicy):
    """Fine-tune only when the accuracy detector fires (§2.2 alternative)."""

    def __init__(self, tolerance: float = 0.04, window: int = 1):
        self.name = f"detect-drop-{tolerance:.2f}"
        self.tolerance = tolerance
        self._baseline: Optional[float] = None

    def should_update(self, day: int, accuracy: float) -> bool:
        if self._baseline is None:
            self._baseline = accuracy
            return False
        return accuracy < self._baseline - self.tolerance

    def notify_updated(self, day: int) -> None:
        self._baseline = None  # re-baseline on the refreshed model


class NeverPolicy(MaintenancePolicy):
    """The outdated-model strawman."""

    name = "never"

    def should_update(self, day: int, accuracy: float) -> bool:
        return False
