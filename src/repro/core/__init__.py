"""``repro.core`` — the paper's contribution.

FT-DMP training strategy, pipelined training, the APO organisation tool,
the near-data processing engine, Check-N-Run delta distribution, and the
runnable PipeStore/Tuner/cluster system.
"""

from .apo import OrganizationCandidate, OrganizationPlan, plan_organization
from .checknrun import (
    DeltaError,
    DeltaStats,
    apply_delta,
    delta_stats,
    encode_delta,
    state_dict_bytes,
)
from .cluster import InferenceServer, NDPipeCluster, RelabelStats
from .config import ClusterConfig
from .dataplane import IngestDataPlane, RingPlacement, RoundRobinPlacement
from .driftdetect import (
    AccuracyWindowDetector,
    DetectionPolicy,
    MaintenanceLog,
    MaintenancePolicy,
    NeverPolicy,
    PageHinkley,
    ScheduledPolicy,
)
from .convergence import (
    RunConvergence,
    check_pipelined_losses,
    delta_balancedness,
    inter_run_loss_gap,
    iterations_to_converge,
)
from ..faults import (
    FaultInjector,
    MessageDroppedError,
    RetryPolicy,
    TransientFaultError,
    call_with_retry,
)
from .fabric import NetworkFabric, TransferRecord
from .ftdmp import EpochRecord, FinetuneReport, FTDMPTrainer
from .npe import (
    ABLATION_LEVELS,
    NpeConfig,
    ThreadedPipeline,
    npe_ablation,
    npe_task_times,
    npe_throughput_ips,
)
from .partition import (
    FinetunePlanConfig,
    PartitionEvaluation,
    evaluate_all_points,
    evaluate_partition,
    find_best_point,
    pipelined_time,
    store_stage_rate,
)
from .pipestore import PipeStore, StoredPhoto, StoreUnavailableError
from .tuner import DistributionStats, Tuner

__all__ = [
    "FTDMPTrainer", "FinetuneReport", "EpochRecord",
    "FinetunePlanConfig", "PartitionEvaluation", "find_best_point",
    "evaluate_partition", "evaluate_all_points", "pipelined_time",
    "store_stage_rate",
    "OrganizationPlan", "OrganizationCandidate", "plan_organization",
    "ThreadedPipeline", "NpeConfig", "npe_ablation", "npe_task_times",
    "npe_throughput_ips", "ABLATION_LEVELS",
    "encode_delta", "apply_delta", "delta_stats", "state_dict_bytes",
    "DeltaStats", "DeltaError",
    "PipeStore", "StoredPhoto", "StoreUnavailableError", "Tuner",
    "DistributionStats",
    "NDPipeCluster", "InferenceServer", "RelabelStats", "ClusterConfig",
    "IngestDataPlane", "RingPlacement", "RoundRobinPlacement",
    "NetworkFabric", "TransferRecord",
    "inter_run_loss_gap", "iterations_to_converge", "delta_balancedness",
    "check_pipelined_losses", "RunConvergence",
    "PageHinkley", "AccuracyWindowDetector", "MaintenancePolicy",
    "ScheduledPolicy", "DetectionPolicy", "NeverPolicy", "MaintenanceLog",
    "FaultInjector", "RetryPolicy", "call_with_retry",
    "TransientFaultError", "MessageDroppedError",
]
