"""NDPipeCluster — the whole system of Fig. 7, runnable end to end.

Wires an inference server, a label database, a Tuner, and N PipeStores over
a byte-accounted fabric.  Supports the three flows the paper describes:

* **ingest** — online inference labels a new photo, the photo plus its
  preprocessed binary land on a PipeStore (preprocessing offload, §5.4),
  and the label is indexed in the database;
* **fine-tune** — FT-DMP continuous training across PipeStores with
  Check-N-Run redistribution;
* **offline relabel** — every PipeStore re-infers its local photos with the
  fresh model and only labels cross the network.

Since the ROADMAP item-1 decomposition the cluster itself is a thin
composition root over three planes: the
:class:`~repro.core.dataplane.IngestDataPlane` (upload landing,
placement, replication), the :class:`~repro.core.controlplane.
RecoveryControlPlane` (journal, re-ingest, scrub/repair), and the
checkpoint codec in :mod:`repro.core.snapshot`.  Every historic method
keeps working as a delegator; the sharded fleet
(:class:`repro.placement.fleet.ShardedCluster`) composes the same planes
with ring placement instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..durability.checkpoint import FinetuneProgress
from ..durability.integrity import ClusterScrubReport
from ..durability.replication import ReplicaMap
from ..fastpath import flags
from ..faults.errors import TransientFaultError
from ..faults.retry import RetryPolicy
from ..models.split import SplitModel
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..storage.imageformat import preprocess
from ..storage.photodb import LabelRecord, PhotoDatabase
from .config import ClusterConfig
from .controlplane import RecoveryControlPlane
from .dataplane import InferenceServer, IngestDataPlane
from .fabric import NetworkFabric
from .ftdmp import FinetuneReport
from .pipestore import PipeStore, StoredPhoto, StoreUnavailableError
from .snapshot import build_checkpoint, restore_checkpoint
from .tuner import Tuner


@dataclass
class RelabelStats:
    """Outcome of one offline-inference campaign (the Table 1 metric)."""

    photos_processed: int
    labels_changed: int
    label_bytes: int
    #: stores that could not serve this campaign (down, or every dispatch
    #: retry failed) — their photos stay outdated for a later pass
    stores_skipped: List[str] = field(default_factory=list)
    #: photos left outdated because their store was skipped
    photos_deferred: int = 0

    @property
    def fraction_changed(self) -> float:
        if self.photos_processed == 0:
            return 0.0
        return self.labels_changed / self.photos_processed

    @property
    def degraded(self) -> bool:
        """Did any store fail to take part in this campaign?"""
        return bool(self.stores_skipped or self.photos_deferred)


class NDPipeCluster:
    """N PipeStores + Tuner + inference server + label database.

    The primary constructor takes a model factory plus one
    :class:`~repro.core.config.ClusterConfig`:

    .. code-block:: python

        cluster = NDPipeCluster(factory, ClusterConfig(num_stores=8))

    The pre-config signature — eleven loose keyword parameters
    (``num_stores=...``, ``lr=...``, ...) — still works through a shim
    that maps the kwargs onto a config and emits exactly one
    ``DeprecationWarning``; behaviour is bit-identical either way.
    Collaborator objects (``retry_policy``, ``metrics``, ``tracer``)
    are live dependencies rather than values and stay keyword-only.
    """

    def __init__(self, model_factory: Callable[[], SplitModel],
                 config: Optional[ClusterConfig] = None, *,
                 retry_policy: Optional[RetryPolicy] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 **legacy_kwargs):
        if legacy_kwargs:
            unknown = sorted(set(legacy_kwargs) - ClusterConfig.field_names())
            if unknown:
                raise TypeError(
                    f"NDPipeCluster got unexpected keyword arguments "
                    f"{unknown}; valid config fields: "
                    f"{sorted(ClusterConfig.field_names())}")
            if config is not None:
                raise TypeError(
                    "pass either a ClusterConfig or legacy keyword "
                    "arguments, not both")
            warnings.warn(
                "constructing NDPipeCluster from loose keyword arguments "
                "is deprecated; pass NDPipeCluster(model_factory, "
                f"ClusterConfig({', '.join(sorted(legacy_kwargs))}=...)) "
                "instead",
                DeprecationWarning, stacklevel=2)
            config = ClusterConfig(**legacy_kwargs)
        self.config = (config if config is not None
                       else ClusterConfig()).validated()
        self.replication = self.config.replication
        self.model_factory = model_factory
        self.replicas = ReplicaMap()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.retry = retry_policy if retry_policy is not None else RetryPolicy()
        self.retry.bind_metrics(self.metrics)
        self.network = NetworkFabric(metrics=self.metrics)
        self.tuner = Tuner(model_factory(), self.network,
                           split=self.config.split, lr=self.config.lr,
                           batch_size=self.config.batch_size,
                           seed=self.config.seed,
                           retry_policy=self.retry, metrics=self.metrics,
                           tracer=self.tracer)
        self.stores: List[PipeStore] = []
        for i in range(self.config.num_stores):
            store = PipeStore(f"pipestore-{i}",
                              nominal_raw_bytes=self.config.nominal_raw_bytes)
            store.bind_metrics(self.metrics)
            self.tuner.register(store, model_factory())
            self.stores.append(store)
        self.inference_server = InferenceServer(model_factory())
        self.inference_server.sync_model(self.tuner.model.state_dict())
        self.database = PhotoDatabase()
        # the recovery control plane owns the upload journal and every
        # failure-recovery path (ROADMAP item 1: split out of this class);
        # the HA controller (repro.ha) attaches here via enable_ha()
        self.control = RecoveryControlPlane(self)
        # the ingest data plane owns placement, replication, and the
        # landing path; the sharded fleet swaps its placement policy
        self.dataplane = IngestDataPlane(self)
        self.ha = None
        self._m_relabel = self.metrics.counter(
            "cluster_relabel_photos_total",
            "photos refreshed by offline relabel campaigns")
        self._m_checkpoints = self.metrics.counter(
            "durability_checkpoints_total", "checkpoints serialised")
        self._m_checkpoint_bytes = self.metrics.gauge(
            "durability_checkpoint_bytes", "size of the latest checkpoint")

    # -- data-plane state (delegated; checkpoints persist these) -------------
    @property
    def _ingest_counter(self) -> int:
        return self.dataplane.ingest_counter

    @_ingest_counter.setter
    def _ingest_counter(self, value: int) -> None:
        self.dataplane.ingest_counter = value

    @property
    def _rr_next(self) -> int:
        return self.dataplane.rr_next

    @_rr_next.setter
    def _rr_next(self, value: int) -> None:
        self.dataplane.rr_next = value

    # -- ingest (online inference) flow --------------------------------------
    def ingest(self, images: np.ndarray, train_labels: Optional[Sequence[int]] = None,
               ) -> List[str]:
        """Upload a batch of photos (N, 3, H, W in [0, 1]); returns ids."""
        if images.ndim != 4:
            raise ValueError(f"expected (N, 3, H, W) images, got {images.shape}")
        if train_labels is not None and len(train_labels) != len(images):
            raise ValueError("train_labels length mismatch")
        ids: List[str] = []
        with self.tracer.span("cluster.ingest", photos=len(images)):
            if flags().batched_ingest:
                self._ingest_batched(images, train_labels, ids)
            else:
                for row, pixels in enumerate(images):
                    label, confidence = self.inference_server.classify(pixels)
                    preprocessed = self.inference_server.preprocess(pixels)
                    train_label = (None if train_labels is None
                                   else int(train_labels[row]))
                    ids.append(self._land_upload(
                        pixels, preprocessed, label, confidence, train_label))
        return ids

    def _ingest_batched(self, images: np.ndarray,
                        train_labels: Optional[Sequence[int]],
                        ids: List[str]) -> None:
        """Classify uploads in micro-batches of ``config.batch_size``.

        One preprocess + one forward per chunk instead of two preprocess
        calls and a batch-1 forward per photo.  The stored preprocessed
        tensors are bit-identical to the per-photo path (the transform is
        elementwise); confidences may differ in the last ulps because a
        batch-N GEMM reduces differently from N batch-1 calls — which is
        why this rides the separate ``batched_ingest`` flag.
        """
        chunk_size = self.config.batch_size
        for start in range(0, len(images), chunk_size):
            block = images[start:start + chunk_size]
            if flags().vectorized_preprocess:
                preprocessed = preprocess(block)
            else:
                preprocessed = np.stack([preprocess(p) for p in block])
            results = self.inference_server.classify_preprocessed(preprocessed)
            for row, (label, confidence) in enumerate(results):
                train_label = (None if train_labels is None
                               else int(train_labels[start + row]))
                ids.append(self._land_upload(
                    block[row], preprocessed[row], label, confidence,
                    train_label))

    def _land_upload(self, pixels: np.ndarray, preprocessed: np.ndarray,
                     label: int, confidence: float,
                     train_label: Optional[int]) -> str:
        """Make one classified upload durable (delegates to the data
        plane): placement, database record, replica copies, journal."""
        return self.dataplane.land_upload(pixels, preprocessed, label,
                                          confidence, train_label)

    # -- high-throughput serving flow ---------------------------------------
    def make_serving_frontend(self, config=None):
        """Build a :class:`~repro.serving.ServingFrontend` for this cluster.

        The frontend gets ``config.replicas`` fresh inference-server
        replicas synced to whatever model the front end currently
        serves, and shares the cluster's fabric (so fault injection and
        byte accounting cover serving traffic), retry policy, metrics,
        and tracer.
        """
        from ..serving import ServingConfig, ServingFrontend

        config = (config if config is not None else ServingConfig()).validated()
        state = self.inference_server.model.state_dict()
        replicas = []
        for i in range(config.replicas):
            replica = InferenceServer(self.model_factory(),
                                      name=f"inference-replica-{i}")
            replica.sync_model(state)
            replicas.append(replica)
        return ServingFrontend(
            replicas, config, network=self.network,
            retry_policy=self.retry, metrics=self.metrics,
            tracer=self.tracer)

    def serve_uploads(self, requests, config=None):
        """Run uploads through the serving layer, then land the survivors.

        Admission control may shed requests (bounded queue, per-request
        deadlines, failed dispatch); everything that completes is made
        durable through the same placement/journal path as
        :meth:`ingest`, reusing the preprocessed tensor the serving
        cache already produced.  Returns ``(report, photo_ids)`` where
        ``photo_ids[i]`` corresponds to ``report.completed_requests[i]``.
        """
        frontend = self.make_serving_frontend(config)
        report = frontend.serve(requests, collect_tensors=True)
        ids: List[str] = []
        with self.tracer.span("cluster.serve_uploads",
                              offered=report.offered,
                              completed=report.completed):
            for outcome in report.completed_requests:
                ids.append(self._land_upload(
                    outcome.request.pixels, outcome.preprocessed,
                    outcome.label, outcome.confidence,
                    outcome.request.train_label))
        return report, ids

    def _place_photo(self, photo: StoredPhoto, kind: str = "ingest",
                     ) -> PipeStore:
        """Land one photo on an available store (data-plane delegator)."""
        return self.dataplane.place_photo(photo, kind=kind)

    def _place_replicas(self, photo: StoredPhoto,
                        exclude: Sequence[str]) -> List[str]:
        """Land extra replica copies (data-plane delegator)."""
        return self.dataplane.place_replicas(photo, exclude=exclude)

    def _next_available_store(self) -> PipeStore:
        """Round-robin store selection (data-plane delegator)."""
        return self.dataplane.next_available_store()

    # -- continuous training flow -----------------------------------------
    def finetune(self, epochs: int = 2, num_runs: int = 1,
                 relocate_lost: bool = False,
                 checkpoint_sink: Optional[Callable[[int, bytes], None]] = None,
                 resume: Optional[FinetuneProgress] = None,
                 distribute: bool = True) -> FinetuneReport:
        """FT-DMP fine-tuning over every labelled photo in the fleet.

        ``distribute=False`` skips the Tuner's unicast Check-N-Run round
        at the end — the sharded fleet passes this and redistributes over
        its fan-out tree instead.

        With ``relocate_lost`` the run survives losing a PipeStore
        mid-run: the dead store's shard is re-ingested from the upload
        journal onto survivors and extracted there in the same round;
        whatever cannot be re-placed is reported as deferred.

        With ``checkpoint_sink`` every completed run becomes a durable
        resume point: the sink receives ``(run_index, checkpoint_blob)``
        after each run trains.  After a Tuner crash, :meth:`restore` the
        latest blob into a fresh cluster and pass the returned
        :class:`FinetuneProgress` back here as ``resume`` — the lifecycle
        picks up at the first incomplete run with the identical per-run
        schedule, optimizer state, and RNG stream, so the resumed model
        matches an uninterrupted run bit for bit.
        """
        start_run = 0
        run_plan = None
        report = None
        if resume is not None:
            run_plan = [
                {sid: list(ids) for sid, ids in per_store.items()}
                for per_store in resume.run_plan
            ]
            start_run = resume.next_run
            epochs = resume.epochs
            relocate_lost = relocate_lost or resume.relocate_lost
            if resume.report:
                report = FinetuneReport.from_dict(resume.report)
        assignments = None
        if run_plan is None:
            assignments = {
                store.store_id: [
                    pid for pid in self.database.ids_at(store.store_id)
                    if store.has_train_label(pid)
                ]
                for store in self.stores
            }
        on_run_complete = None
        if checkpoint_sink is not None or self.ha is not None:
            def on_run_complete(run_index, plan, partial_report,
                                _epochs=epochs, _relocate=relocate_lost):
                progress = FinetuneProgress(
                    num_runs=len(plan), epochs=_epochs,
                    next_run=run_index + 1,
                    run_plan=plan, report=partial_report.to_dict(),
                    relocate_lost=_relocate,
                )
                if self.ha is not None:
                    # keep the warm standby current: every run boundary
                    # ships a tuner-scoped checkpoint over the fabric
                    self.ha.ship_checkpoint(progress)
                if checkpoint_sink is not None:
                    checkpoint_sink(run_index, self.checkpoint(ftdmp=progress))
        with self.tracer.span("cluster.finetune", epochs=epochs,
                              num_runs=num_runs):
            report = self.tuner.finetune(
                assignments=assignments, epochs=epochs, num_runs=num_runs,
                distribute=distribute,
                relocate=self._relocate_for_training if relocate_lost else None,
                start_run=start_run, run_plan=run_plan,
                on_run_complete=on_run_complete, report=report,
            )
            self.inference_server.sync_model(self.tuner.model.state_dict())
        if self.ha is not None:
            # post-distribution state: a failover after this point resumes
            # with nothing left to train
            self.ha.ship_checkpoint(None)
        return report

    def _relocate_for_training(self, store_id: str,
                               photo_ids: Sequence[str],
                               ) -> Dict[str, List[str]]:
        """Degraded-mode FT-DMP callback: re-place a lost shard, return the
        new store -> photo-ids assignment for what actually moved."""
        placement: Dict[str, List[str]] = {}
        for pid in self.reingest_orphans(store_id, only=photo_ids):
            location = self.database.lookup(pid).location
            placement.setdefault(location, []).append(pid)
        return placement

    # -- offline inference flow ---------------------------------------------
    def offline_relabel(self, only_outdated: bool = True) -> RelabelStats:
        """Refresh database labels with the current model, near the data.

        Stores that are down — or become unreachable mid-campaign despite
        the Tuner's retries — are skipped *visibly*: the returned stats
        name them and count the photos left outdated for a later pass.
        """
        target_version = self.tuner.version
        stats = RelabelStats(photos_processed=0, labels_changed=0,
                             label_bytes=0)
        with self.tracer.span("cluster.offline_relabel",
                              target_version=target_version):
            self._offline_relabel(stats, target_version, only_outdated)
        self._m_relabel.inc(stats.photos_processed)
        return stats

    def _offline_relabel(self, stats: RelabelStats, target_version: int,
                         only_outdated: bool) -> None:
        from ..sim.specs import LABEL_BYTES

        for store in self.stores:
            if only_outdated:
                ids = [
                    pid for pid in self.database.ids_at(store.store_id)
                    if self.database.lookup(pid).model_version < target_version
                ]
            else:
                ids = self.database.ids_at(store.store_id)
            if not ids:
                continue
            if not store.is_available:
                stats.stores_skipped.append(store.store_id)
                stats.photos_deferred += len(ids)
                continue
            try:
                results = self.tuner.trigger_offline_inference(store, ids)
            except (StoreUnavailableError, TransientFaultError):
                # lost mid-campaign and every retry failed
                stats.stores_skipped.append(store.store_id)
                stats.photos_deferred += len(ids)
                continue
            stats.label_bytes += LABEL_BYTES * len(results)
            for pid, (label, confidence) in results.items():
                record = self.database.lookup(pid)
                stats.photos_processed += 1
                if self.database.upsert(LabelRecord(
                    photo_id=pid, label=label, model_version=target_version,
                    location=record.location, confidence=confidence,
                )):
                    stats.labels_changed += 1

    # -- upload journal (owned by the control plane) ------------------------
    @property
    def _journal(self) -> Optional[Dict[str, Tuple[np.ndarray, Optional[int]]]]:
        # kept as a property: chaos tests poke the journal directly
        return self.control.journal

    @_journal.setter
    def _journal(self, value) -> None:
        self.control.journal = value

    @property
    def journal_size(self) -> int:
        """Entries currently resident in the upload journal."""
        return self.control.journal_size

    def _journal_put(self, photo_id: str, pixels: np.ndarray,
                     train_label: Optional[int]) -> None:
        self.control.journal_put(photo_id, pixels, train_label)

    def prune_journal(self) -> int:
        """Drop journal entries whose photo is gone from the database.

        Delegates to the :class:`RecoveryControlPlane`; see
        :meth:`~repro.core.controlplane.RecoveryControlPlane.prune_journal`.
        """
        return self.control.prune_journal()

    # -- failure recovery (delegated to the control plane) -------------------
    def reingest_orphans(self, store_id: str,
                         only: Optional[Sequence[str]] = None) -> List[str]:
        """Re-place journalled photos stranded on a crashed store."""
        return self.control.reingest_orphans(store_id, only=only)

    def recover(self, store: Union[str, PipeStore]) -> PipeStore:
        """Bring a crashed store back into service (repair + resync)."""
        return self.control.recover(store)

    def reconcile(self, store: Union[str, PipeStore]) -> List[str]:
        """Drop a store's photos whose authoritative location moved away."""
        return self.control.reconcile(store)

    def _resolve_store(self, store: Union[str, PipeStore]) -> PipeStore:
        if isinstance(store, PipeStore):
            return store
        for candidate in self.stores:
            if candidate.store_id == store:
                return candidate
        raise KeyError(f"unknown store {store!r}")

    # -- integrity: scrub and replica repair --------------------------------
    def scrub_and_repair(self) -> ClusterScrubReport:
        """CRC-sweep every available store; heal damage from replicas."""
        return self.control.scrub_and_repair()

    # -- high availability ---------------------------------------------------
    def enable_ha(self, config=None, injector=None):
        """Attach the HA layer: failure detector, warm-standby Tuner with
        epoch-fenced failover, and automatic store eviction/rejoin.

        Returns the :class:`~repro.ha.controller.HAController`; drive it
        with ``poll()`` (the nemesis harness and serving loops do this
        between steps).  ``injector`` ties suspicion timeouts to the
        fault injector's logical clock.
        """
        from ..ha import HAConfig
        from ..ha.controller import HAController

        if self.ha is not None:
            return self.ha
        config = (config if config is not None else HAConfig()).validated()
        self.ha = HAController(self, config, injector=injector)
        return self.ha

    def adopt_tuner(self, tuner: Tuner) -> None:
        """Swap in a newly elected primary Tuner (HA failover).

        The front end keeps serving whatever model was last distributed
        by the old primary — the new primary's next distribution round
        moves it forward, exactly as a surviving primary's would.
        """
        self.tuner = tuner

    # -- checkpoint / restore -----------------------------------------------
    def checkpoint(self, ftdmp: Optional[FinetuneProgress] = None) -> bytes:
        """Serialise the full lifecycle into one CRC-trailed blob.

        Captures everything resume needs bit-exactly: the Tuner's model,
        optimizer moments and RNG stream, every store's object snapshot,
        model replica and training labels, the label database with its
        version history, the replica map, the upload journal, and — when
        taken mid-fine-tune — the FT-DMP run journal ``ftdmp``.
        Delegates to :func:`repro.core.snapshot.build_checkpoint`.
        """
        blob = build_checkpoint(self, ftdmp=ftdmp)
        self._m_checkpoints.inc()
        self._m_checkpoint_bytes.set(len(blob))
        return blob

    def restore(self, blob: bytes) -> Optional[FinetuneProgress]:
        """Load a checkpoint into this (freshly built) cluster.

        The cluster must have been constructed with the same store fleet
        the checkpoint describes (``inspect_checkpoint`` reports it).
        Returns the pending :class:`FinetuneProgress` if the checkpoint
        was taken mid-fine-tune — pass it to :meth:`finetune` as
        ``resume`` to finish the lifecycle — or ``None``.
        Delegates to :func:`repro.core.snapshot.restore_checkpoint`.
        """
        return restore_checkpoint(self, blob)

    # -- evaluation --------------------------------------------------------
    def evaluate(self, images: np.ndarray, labels: np.ndarray,
                 ) -> Tuple[float, float]:
        """(top-1, top-5) of the current model on preprocessed inputs."""
        return self.tuner.evaluate(preprocess(images), labels)

    # -- reporting ---------------------------------------------------------
    def traffic_summary(self) -> Dict[str, int]:
        return self.network.kinds()
