"""NDPipeCluster — the whole system of Fig. 7, runnable end to end.

Wires an inference server, a label database, a Tuner, and N PipeStores over
a byte-accounted fabric.  Supports the three flows the paper describes:

* **ingest** — online inference labels a new photo, the photo plus its
  preprocessed binary land on a PipeStore (preprocessing offload, §5.4),
  and the label is indexed in the database;
* **fine-tune** — FT-DMP continuous training across PipeStores with
  Check-N-Run redistribution;
* **offline relabel** — every PipeStore re-infers its local photos with the
  fresh model and only labels cross the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.split import SplitModel
from ..nn.tensor import Tensor
from ..storage.imageformat import preprocess
from ..storage.photodb import LabelRecord, PhotoDatabase
from .fabric import NetworkFabric
from .ftdmp import FinetuneReport
from .pipestore import PipeStore, StoredPhoto, StoreUnavailableError
from .tuner import Tuner


@dataclass
class RelabelStats:
    """Outcome of one offline-inference campaign (the Table 1 metric)."""

    photos_processed: int
    labels_changed: int
    label_bytes: int

    @property
    def fraction_changed(self) -> float:
        if self.photos_processed == 0:
            return 0.0
        return self.labels_changed / self.photos_processed


class InferenceServer:
    """The online-inference front end: labels uploads, offloads preprocessing."""

    def __init__(self, model: SplitModel, name: str = "inference-server"):
        self.name = name
        self.model = model
        self.model.eval()

    def classify(self, pixels: np.ndarray) -> Tuple[int, float]:
        """Label one photo (3, H, W); returns (label, confidence)."""
        logits = self.model(Tensor(preprocess(pixels)[None])).data[0]
        shifted = logits - logits.max()
        probs = np.exp(shifted)
        probs /= probs.sum()
        label = int(probs.argmax())
        return label, float(probs[label])

    def preprocess(self, pixels: np.ndarray) -> np.ndarray:
        """The offloaded preprocessing step (§5.4 +Offload)."""
        return preprocess(pixels)

    def sync_model(self, state: Dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(state)


class NDPipeCluster:
    """N PipeStores + Tuner + inference server + label database."""

    def __init__(self, model_factory: Callable[[], SplitModel],
                 num_stores: int = 4, split: Optional[int] = None,
                 nominal_raw_bytes: int = 8192, lr: float = 3e-3,
                 batch_size: int = 64, seed: int = 0):
        if num_stores < 1:
            raise ValueError("need at least one PipeStore")
        self.network = NetworkFabric()
        self.tuner = Tuner(model_factory(), self.network, split=split,
                           lr=lr, batch_size=batch_size, seed=seed)
        self.stores: List[PipeStore] = []
        for i in range(num_stores):
            store = PipeStore(f"pipestore-{i}",
                              nominal_raw_bytes=nominal_raw_bytes)
            self.tuner.register(store, model_factory())
            self.stores.append(store)
        self.inference_server = InferenceServer(model_factory())
        self.inference_server.sync_model(self.tuner.model.state_dict())
        self.database = PhotoDatabase()
        self._ingest_counter = 0
        self._rr_next = 0

    # -- ingest (online inference) flow --------------------------------------
    def ingest(self, images: np.ndarray, train_labels: Optional[Sequence[int]] = None,
               ) -> List[str]:
        """Upload a batch of photos (N, 3, H, W in [0, 1]); returns ids."""
        if images.ndim != 4:
            raise ValueError(f"expected (N, 3, H, W) images, got {images.shape}")
        if train_labels is not None and len(train_labels) != len(images):
            raise ValueError("train_labels length mismatch")
        ids: List[str] = []
        for row, pixels in enumerate(images):
            photo_id = f"photo-{self._ingest_counter:08d}"
            self._ingest_counter += 1
            label, confidence = self.inference_server.classify(pixels)
            preprocessed = self.inference_server.preprocess(pixels)
            store = self._next_available_store()
            photo = StoredPhoto(
                photo_id=photo_id,
                pixels=pixels,
                preprocessed=preprocessed,
                train_label=None if train_labels is None else int(train_labels[row]),
            )
            # raw photo + offloaded preprocessed binary travel to the store
            stored_bytes = store.store_photo(photo)
            self.network.send(self.inference_server.name, store.store_id,
                              stored_bytes, "ingest")
            self.database.upsert(LabelRecord(
                photo_id=photo_id, label=label,
                model_version=self.tuner.version,
                location=store.store_id, confidence=confidence,
            ))
            ids.append(photo_id)
        return ids

    def _next_available_store(self) -> PipeStore:
        """Round-robin placement that routes around failed servers."""
        for _ in range(len(self.stores)):
            store = self.stores[self._rr_next]
            self._rr_next = (self._rr_next + 1) % len(self.stores)
            if store.is_available:
                return store
        raise StoreUnavailableError("no PipeStore is available for ingest")

    # -- continuous training flow -----------------------------------------
    def finetune(self, epochs: int = 2, num_runs: int = 1) -> FinetuneReport:
        """FT-DMP fine-tuning over every labelled photo in the fleet."""
        report = self.tuner.finetune(epochs=epochs, num_runs=num_runs)
        self.inference_server.sync_model(self.tuner.model.state_dict())
        return report

    # -- offline inference flow ---------------------------------------------
    def offline_relabel(self, only_outdated: bool = True) -> RelabelStats:
        """Refresh database labels with the current model, near the data."""
        from ..sim.specs import LABEL_BYTES

        target_version = self.tuner.version
        processed = 0
        changed = 0
        label_bytes = 0
        for store in self.stores:
            if not store.is_available:
                continue
            if only_outdated:
                ids = [
                    pid for pid in self.database.ids_at(store.store_id)
                    if self.database.lookup(pid).model_version < target_version
                ]
            else:
                ids = self.database.ids_at(store.store_id)
            if not ids:
                continue
            results = self.tuner.trigger_offline_inference(store, ids)
            label_bytes += LABEL_BYTES * len(results)
            for pid, (label, confidence) in results.items():
                record = self.database.lookup(pid)
                processed += 1
                if self.database.upsert(LabelRecord(
                    photo_id=pid, label=label, model_version=target_version,
                    location=record.location, confidence=confidence,
                )):
                    changed += 1
        return RelabelStats(photos_processed=processed, labels_changed=changed,
                            label_bytes=label_bytes)

    # -- evaluation --------------------------------------------------------
    def evaluate(self, images: np.ndarray, labels: np.ndarray,
                 ) -> Tuple[float, float]:
        """(top-1, top-5) of the current model on preprocessed inputs."""
        return self.tuner.evaluate(preprocess(images), labels)

    # -- reporting ---------------------------------------------------------
    def traffic_summary(self) -> Dict[str, int]:
        return self.network.kinds()
