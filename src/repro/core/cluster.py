"""NDPipeCluster — the whole system of Fig. 7, runnable end to end.

Wires an inference server, a label database, a Tuner, and N PipeStores over
a byte-accounted fabric.  Supports the three flows the paper describes:

* **ingest** — online inference labels a new photo, the photo plus its
  preprocessed binary land on a PipeStore (preprocessing offload, §5.4),
  and the label is indexed in the database;
* **fine-tune** — FT-DMP continuous training across PipeStores with
  Check-N-Run redistribution;
* **offline relabel** — every PipeStore re-infers its local photos with the
  fresh model and only labels cross the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..faults.errors import TransientFaultError
from ..faults.retry import RetryPolicy, call_with_retry
from ..models.split import SplitModel
from ..nn.tensor import Tensor
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..storage.imageformat import preprocess
from ..storage.photodb import LabelRecord, PhotoDatabase
from .fabric import NetworkFabric
from .ftdmp import FinetuneReport
from .pipestore import PipeStore, StoredPhoto, StoreUnavailableError
from .tuner import Tuner


@dataclass
class RelabelStats:
    """Outcome of one offline-inference campaign (the Table 1 metric)."""

    photos_processed: int
    labels_changed: int
    label_bytes: int
    #: stores that could not serve this campaign (down, or every dispatch
    #: retry failed) — their photos stay outdated for a later pass
    stores_skipped: List[str] = field(default_factory=list)
    #: photos left outdated because their store was skipped
    photos_deferred: int = 0

    @property
    def fraction_changed(self) -> float:
        if self.photos_processed == 0:
            return 0.0
        return self.labels_changed / self.photos_processed

    @property
    def degraded(self) -> bool:
        """Did any store fail to take part in this campaign?"""
        return bool(self.stores_skipped or self.photos_deferred)


class InferenceServer:
    """The online-inference front end: labels uploads, offloads preprocessing."""

    def __init__(self, model: SplitModel, name: str = "inference-server"):
        self.name = name
        self.model = model
        self.model.eval()

    def classify(self, pixels: np.ndarray) -> Tuple[int, float]:
        """Label one photo (3, H, W); returns (label, confidence)."""
        logits = self.model(Tensor(preprocess(pixels)[None])).data[0]
        shifted = logits - logits.max()
        probs = np.exp(shifted)
        probs /= probs.sum()
        label = int(probs.argmax())
        return label, float(probs[label])

    def preprocess(self, pixels: np.ndarray) -> np.ndarray:
        """The offloaded preprocessing step (§5.4 +Offload)."""
        return preprocess(pixels)

    def sync_model(self, state: Dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(state)


class NDPipeCluster:
    """N PipeStores + Tuner + inference server + label database."""

    def __init__(self, model_factory: Callable[[], SplitModel],
                 num_stores: int = 4, split: Optional[int] = None,
                 nominal_raw_bytes: int = 8192, lr: float = 3e-3,
                 batch_size: int = 64, seed: int = 0,
                 retry_policy: Optional[RetryPolicy] = None,
                 journal_uploads: bool = True,
                 journal_max_entries: Optional[int] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None):
        if num_stores < 1:
            raise ValueError("need at least one PipeStore")
        if journal_max_entries is not None and journal_max_entries < 1:
            raise ValueError("journal_max_entries must be >= 1")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.retry = retry_policy if retry_policy is not None else RetryPolicy()
        self.retry.bind_metrics(self.metrics)
        self.network = NetworkFabric(metrics=self.metrics)
        self.tuner = Tuner(model_factory(), self.network, split=split,
                           lr=lr, batch_size=batch_size, seed=seed,
                           retry_policy=self.retry, metrics=self.metrics,
                           tracer=self.tracer)
        self.stores: List[PipeStore] = []
        for i in range(num_stores):
            store = PipeStore(f"pipestore-{i}",
                              nominal_raw_bytes=nominal_raw_bytes)
            store.bind_metrics(self.metrics)
            self.tuner.register(store, model_factory())
            self.stores.append(store)
        self.inference_server = InferenceServer(model_factory())
        self.inference_server.sync_model(self.tuner.model.state_dict())
        self.database = PhotoDatabase()
        self._ingest_counter = 0
        self._rr_next = 0
        # the front end journals uploads (pixels + user tag) so photos
        # orphaned on a crashed store can be re-placed onto survivors.
        # The journal is bounded: entries whose photo left the database
        # are pruned, and ``journal_max_entries`` caps residency (oldest
        # entries fall out first) so raw pixel buffers cannot accumulate
        # for the lifetime of the cluster.
        self._journal: Optional[Dict[str, Tuple[np.ndarray, Optional[int]]]]
        self._journal = {} if journal_uploads else None
        self._journal_max_entries = journal_max_entries
        self._m_journal = self.metrics.gauge(
            "cluster_journal_entries", "upload-journal entries resident")
        self._m_journal_pruned = self.metrics.counter(
            "cluster_journal_pruned_total", "journal entries pruned",
            label_names=("reason",))
        self._m_ingested = self.metrics.counter(
            "cluster_photos_ingested_total", "photos accepted by ingest")
        self._m_relabel = self.metrics.counter(
            "cluster_relabel_photos_total",
            "photos refreshed by offline relabel campaigns")

    # -- ingest (online inference) flow --------------------------------------
    def ingest(self, images: np.ndarray, train_labels: Optional[Sequence[int]] = None,
               ) -> List[str]:
        """Upload a batch of photos (N, 3, H, W in [0, 1]); returns ids."""
        if images.ndim != 4:
            raise ValueError(f"expected (N, 3, H, W) images, got {images.shape}")
        if train_labels is not None and len(train_labels) != len(images):
            raise ValueError("train_labels length mismatch")
        ids: List[str] = []
        with self.tracer.span("cluster.ingest", photos=len(images)):
            for row, pixels in enumerate(images):
                photo_id = f"photo-{self._ingest_counter:08d}"
                self._ingest_counter += 1
                label, confidence = self.inference_server.classify(pixels)
                preprocessed = self.inference_server.preprocess(pixels)
                train_label = (None if train_labels is None
                               else int(train_labels[row]))
                photo = StoredPhoto(
                    photo_id=photo_id,
                    pixels=pixels,
                    preprocessed=preprocessed,
                    train_label=train_label,
                )
                store = self._place_photo(photo)
                self.database.upsert(LabelRecord(
                    photo_id=photo_id, label=label,
                    model_version=self.tuner.version,
                    location=store.store_id, confidence=confidence,
                ))
                self._journal_put(photo_id, pixels, train_label)
                self._m_ingested.inc()
                ids.append(photo_id)
        return ids

    def _place_photo(self, photo: StoredPhoto, kind: str = "ingest",
                     ) -> PipeStore:
        """Land one photo (raw blob + offloaded preprocessed binary) on an
        available store, riding the retry policy around dropped transfers
        and stores that crash between selection and write."""
        last_error: Optional[BaseException] = None
        for _ in range(len(self.stores)):
            store = self._next_available_store()
            try:
                stored_bytes = store.store_photo(photo)
            except StoreUnavailableError as exc:
                last_error = exc
                continue
            try:
                call_with_retry(
                    lambda: self.network.send(self.inference_server.name,
                                              store.store_id, stored_bytes,
                                              kind),
                    self.retry)
            except TransientFaultError as exc:
                # placement never became durable-and-acknowledged; undo and
                # try the next store
                store.evict_photo(photo.photo_id)
                last_error = exc
                continue
            return store
        raise StoreUnavailableError(
            f"no PipeStore accepted {photo.photo_id}"
        ) from last_error

    def _next_available_store(self) -> PipeStore:
        """Round-robin placement that routes around failed servers."""
        for _ in range(len(self.stores)):
            store = self.stores[self._rr_next]
            self._rr_next = (self._rr_next + 1) % len(self.stores)
            if store.is_available:
                return store
        raise StoreUnavailableError("no PipeStore is available for ingest")

    # -- continuous training flow -----------------------------------------
    def finetune(self, epochs: int = 2, num_runs: int = 1,
                 relocate_lost: bool = False) -> FinetuneReport:
        """FT-DMP fine-tuning over every labelled photo in the fleet.

        With ``relocate_lost`` the run survives losing a PipeStore
        mid-run: the dead store's shard is re-ingested from the upload
        journal onto survivors and extracted there in the same round;
        whatever cannot be re-placed is reported as deferred.
        """
        assignments = {
            store.store_id: [
                pid for pid in self.database.ids_at(store.store_id)
                if store.has_train_label(pid)
            ]
            for store in self.stores
        }
        with self.tracer.span("cluster.finetune", epochs=epochs,
                              num_runs=num_runs):
            report = self.tuner.finetune(
                assignments=assignments, epochs=epochs, num_runs=num_runs,
                relocate=self._relocate_for_training if relocate_lost else None,
            )
            self.inference_server.sync_model(self.tuner.model.state_dict())
        return report

    def _relocate_for_training(self, store_id: str,
                               photo_ids: Sequence[str],
                               ) -> Dict[str, List[str]]:
        """Degraded-mode FT-DMP callback: re-place a lost shard, return the
        new store -> photo-ids assignment for what actually moved."""
        placement: Dict[str, List[str]] = {}
        for pid in self.reingest_orphans(store_id, only=photo_ids):
            location = self.database.lookup(pid).location
            placement.setdefault(location, []).append(pid)
        return placement

    # -- offline inference flow ---------------------------------------------
    def offline_relabel(self, only_outdated: bool = True) -> RelabelStats:
        """Refresh database labels with the current model, near the data.

        Stores that are down — or become unreachable mid-campaign despite
        the Tuner's retries — are skipped *visibly*: the returned stats
        name them and count the photos left outdated for a later pass.
        """
        target_version = self.tuner.version
        stats = RelabelStats(photos_processed=0, labels_changed=0,
                             label_bytes=0)
        with self.tracer.span("cluster.offline_relabel",
                              target_version=target_version):
            self._offline_relabel(stats, target_version, only_outdated)
        self._m_relabel.inc(stats.photos_processed)
        return stats

    def _offline_relabel(self, stats: RelabelStats, target_version: int,
                         only_outdated: bool) -> None:
        from ..sim.specs import LABEL_BYTES

        for store in self.stores:
            if only_outdated:
                ids = [
                    pid for pid in self.database.ids_at(store.store_id)
                    if self.database.lookup(pid).model_version < target_version
                ]
            else:
                ids = self.database.ids_at(store.store_id)
            if not ids:
                continue
            if not store.is_available:
                stats.stores_skipped.append(store.store_id)
                stats.photos_deferred += len(ids)
                continue
            try:
                results = self.tuner.trigger_offline_inference(store, ids)
            except (StoreUnavailableError, TransientFaultError):
                # lost mid-campaign and every retry failed
                stats.stores_skipped.append(store.store_id)
                stats.photos_deferred += len(ids)
                continue
            stats.label_bytes += LABEL_BYTES * len(results)
            for pid, (label, confidence) in results.items():
                record = self.database.lookup(pid)
                stats.photos_processed += 1
                if self.database.upsert(LabelRecord(
                    photo_id=pid, label=label, model_version=target_version,
                    location=record.location, confidence=confidence,
                )):
                    stats.labels_changed += 1

    # -- upload journal -----------------------------------------------------
    @property
    def journal_size(self) -> int:
        """Entries currently resident in the upload journal."""
        return 0 if self._journal is None else len(self._journal)

    def _journal_put(self, photo_id: str, pixels: np.ndarray,
                     train_label: Optional[int]) -> None:
        if self._journal is None:
            return
        self._journal[photo_id] = (pixels, train_label)
        cap = self._journal_max_entries
        if cap is not None and len(self._journal) > cap:
            # dict preserves insertion order: evict the oldest uploads
            overflow = len(self._journal) - cap
            for pid in list(self._journal)[:overflow]:
                del self._journal[pid]
            self._m_journal_pruned.inc(overflow, reason="capacity")
        self._m_journal.set(len(self._journal))

    def prune_journal(self) -> int:
        """Drop journal entries whose photo is gone from the database.

        The database is the single source of truth for placement; a photo
        that left it can never need re-ingestion, so its raw pixel buffer
        has no business staying resident.  Returns how many entries were
        dropped.  Called automatically by :meth:`reconcile`.
        """
        if self._journal is None:
            return 0
        stale = [pid for pid in self._journal if pid not in self.database]
        for pid in stale:
            del self._journal[pid]
        if stale:
            self._m_journal_pruned.inc(len(stale), reason="departed")
        self._m_journal.set(len(self._journal))
        return len(stale)

    # -- failure recovery ---------------------------------------------------
    def reingest_orphans(self, store_id: str,
                         only: Optional[Sequence[str]] = None) -> List[str]:
        """Re-place journalled photos stranded on a crashed store.

        Photos whose upload is still in the front end's journal are
        re-preprocessed and landed on healthy stores; their database
        records move with them (same label, same model version).  Returns
        the ids that actually moved — anything not journalled (or not
        placeable right now) stays orphaned until the store repairs.
        """
        if self._journal is None:
            return []
        moved: List[str] = []
        candidates = (self.database.ids_at(store_id) if only is None
                      else list(only))
        with self.tracer.span("cluster.reingest_orphans", store=store_id,
                              candidates=len(candidates)):
            for pid in candidates:
                if pid not in self._journal or pid not in self.database:
                    continue
                record = self.database.lookup(pid)
                if record.location != store_id:
                    continue  # already moved
                pixels, train_label = self._journal[pid]
                photo = StoredPhoto(
                    photo_id=pid, pixels=pixels,
                    preprocessed=self.inference_server.preprocess(pixels),
                    train_label=train_label,
                )
                try:
                    target = self._place_photo(photo, kind="re-ingest")
                except StoreUnavailableError:
                    continue
                self.database.upsert(LabelRecord(
                    photo_id=pid, label=record.label,
                    model_version=record.model_version,
                    location=target.store_id, confidence=record.confidence,
                ))
                moved.append(pid)
        return moved

    def recover(self, store: Union[str, PipeStore]) -> PipeStore:
        """Bring a crashed store back: repair, resync the model replica it
        missed, and evict any photo the cluster re-placed elsewhere while
        it was down (the database location is authoritative)."""
        store = self._resolve_store(store)
        with self.tracer.span("cluster.recover", store=store.store_id):
            store.repair()
            store.slowdown = 1.0
            self.tuner.catch_up(store)
            self.reconcile(store)
        return store

    def reconcile(self, store: Union[str, PipeStore]) -> List[str]:
        """Drop a store's photos whose authoritative location moved away."""
        store = self._resolve_store(store)
        evicted = []
        for pid in store.photo_ids():
            if (pid not in self.database
                    or self.database.lookup(pid).location != store.store_id):
                store.evict_photo(pid)
                evicted.append(pid)
        self.prune_journal()
        return evicted

    def _resolve_store(self, store: Union[str, PipeStore]) -> PipeStore:
        if isinstance(store, PipeStore):
            return store
        for candidate in self.stores:
            if candidate.store_id == store:
                return candidate
        raise KeyError(f"unknown store {store!r}")

    # -- evaluation --------------------------------------------------------
    def evaluate(self, images: np.ndarray, labels: np.ndarray,
                 ) -> Tuple[float, float]:
        """(top-1, top-5) of the current model on preprocessed inputs."""
        return self.tuner.evaluate(preprocess(images), labels)

    # -- reporting ---------------------------------------------------------
    def traffic_summary(self) -> Dict[str, int]:
        return self.network.kinds()
