"""Ingest data plane — upload landing, placement, and replication.

Second cut of the ROADMAP item-1 decomposition (the recovery control
plane came first): everything that turns a classified upload into
durable bytes on PipeStores now lives here, behind the same
back-reference shape as :class:`~repro.core.controlplane.
RecoveryControlPlane` — the plane holds ``self.cluster`` and reaches
through it for the fleet, database, replica map, and journal, while
:class:`~repro.core.cluster.NDPipeCluster` keeps thin delegators.

Placement is a policy seam.  :class:`RoundRobinPlacement` reproduces the
historic cursor walk bit-for-bit (the default — single-shard clusters
and their checkpoints are unaffected); :class:`RingPlacement` routes
through a :class:`~repro.placement.ring.ConsistentHashRing` with
bounded-load awareness, which is how the sharded fleet places and how
fresh ingest routes around a store whose link has gone slow (the
``_next_available_store`` queue-depth fix).

The plane also hosts :class:`InferenceServer`, the online front end that
produces the labels ingest makes durable — it moved here from
``cluster.py`` with the rest of the data path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..fastpath import flags
from ..faults.errors import TransientFaultError
from ..faults.retry import call_with_retry
from ..models.split import SplitModel
from ..nn.tensor import Tensor, inference_mode
from ..storage.imageformat import preprocess
from ..storage.photodb import LabelRecord
from .pipestore import PipeStore, StoredPhoto, StoreUnavailableError

__all__ = ["InferenceServer", "IngestDataPlane", "RoundRobinPlacement",
           "RingPlacement"]


class InferenceServer:
    """The online-inference front end: labels uploads, offloads preprocessing."""

    def __init__(self, model: SplitModel, name: str = "inference-server"):
        self.name = name
        self.model = model
        self.model.eval()
        self._failed = False

    # -- fault injection ----------------------------------------------------
    @property
    def is_available(self) -> bool:
        return not self._failed

    def fail(self) -> None:
        """Take the front end down (targeted fault injection)."""
        self._failed = True

    def repair(self) -> None:
        """Bring the front end back; its model replica survives."""
        self._failed = False

    def classify(self, pixels: np.ndarray) -> Tuple[int, float]:
        """Label one photo (3, H, W); returns (label, confidence)."""
        return self.classify_preprocessed(preprocess(pixels)[None])[0]

    def classify_preprocessed(self, batch: np.ndarray,
                              ) -> List[Tuple[int, float]]:
        """Label a batch of already-preprocessed inputs (N, 3, H, W).

        One forward pass for the whole micro-batch — the serving layer's
        adaptive batcher feeds coalesced uploads through here instead of
        N single-image :meth:`classify` calls.
        """
        with inference_mode():
            logits = self.model(Tensor(batch)).data
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=1, keepdims=True)
        labels = probs.argmax(axis=1)
        return [(int(label), float(probs[row, label]))
                for row, label in enumerate(labels)]

    def classify_batch(self, images: np.ndarray) -> List[Tuple[int, float]]:
        """Preprocess and label a raw batch (N, 3, H, W) in one pass."""
        if flags().vectorized_preprocess:
            # elementwise transform: one call over the whole batch lands
            # the exact bytes of the per-photo loop
            return self.classify_preprocessed(preprocess(images))
        return self.classify_preprocessed(
            np.stack([preprocess(pixels) for pixels in images]))

    def preprocess(self, pixels: np.ndarray) -> np.ndarray:
        """The offloaded preprocessing step (§5.4 +Offload)."""
        return preprocess(pixels)

    def sync_model(self, state: Dict[str, np.ndarray]) -> None:
        self.model.load_state_dict(state)


class RoundRobinPlacement:
    """The historic placement: a cursor walk that skips failed servers.

    Candidate order, cursor advancement, and failure behaviour are
    exactly the pre-refactor ``_place_photo``/``_next_available_store``
    pair, so single-shard checkpoints (which persist the cursor) and the
    even/odd placement tests stay bit-identical.
    """

    def __init__(self, plane: "IngestDataPlane"):
        self.plane = plane

    def candidates(self, photo_id: str) -> Iterator[PipeStore]:
        for _ in range(len(self.plane.stores)):
            yield self.plane.next_available_store()

    def replica_candidates(self, photo_id: str,
                           taken: Sequence[str]) -> Iterator[PipeStore]:
        """Replica order: the fleet walked from the round-robin cursor."""
        plane = self.plane
        order = plane.stores[plane.rr_next:] + plane.stores[:plane.rr_next]
        for store in order:
            if store.store_id not in taken and store.is_available:
                yield store


class RingPlacement:
    """Consistent-hash placement with bounded-load routing.

    The first candidate is the ring's load-aware :meth:`~repro.placement.
    ring.ConsistentHashRing.pick` — a shard whose observed ingest queue
    (placements plus injected transfer latency) exceeds
    ``load_factor`` x the fleet mean is skipped for its ring successor.
    Fallback candidates on write failure are the remaining distinct ring
    successors in clockwise order, so retries stay deterministic.
    """

    def __init__(self, plane: "IngestDataPlane", ring,
                 load_factor: float = 1.25):
        self.plane = plane
        self.ring = ring
        self.load_factor = load_factor

    def candidates(self, photo_id: str) -> Iterator[PipeStore]:
        plane = self.plane
        first = self.ring.pick(
            photo_id, load_of=plane.queue_depth,
            load_factor=self.load_factor, available=plane.is_available)
        if first != self.ring.primary(photo_id) \
                and plane.metrics_load_skips is not None:
            plane.metrics_load_skips.inc()
        yield plane.store_by_id(first)
        for shard in self.ring.replica_set(photo_id, len(self.ring)):
            if shard != first and plane.is_available(shard):
                yield plane.store_by_id(shard)

    def replica_candidates(self, photo_id: str,
                           taken: Sequence[str]) -> Iterator[PipeStore]:
        """Replica order: the photo's ring successors, clockwise.

        Matches :meth:`~repro.placement.ring.ConsistentHashRing.
        replica_set`, so as long as the primary was not load-diverted the
        holder set is exactly the ring's desired set and a later
        membership change migrates only the keyspace that actually moved.
        """
        plane = self.plane
        for shard in self.ring.replica_set(photo_id, len(self.ring)):
            if shard not in taken and plane.is_available(shard):
                yield plane.store_by_id(shard)


class IngestDataPlane:
    """Owns upload landing: ids, placement, replication, journalling."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.ingest_counter = 0
        self.rr_next = 0
        self.placement = RoundRobinPlacement(self)
        #: observed ingest work per store: 1 unit per landed object plus
        #: ``latency_penalty`` units per second of injected transfer
        #: latency — the queue-depth signal behind load-aware placement
        self.latency_penalty = 8.0
        self._load: Dict[str, float] = {}
        #: optional hook for shard_load_skips_total (bound by the fleet;
        #: None on single-shard clusters so their metric surface is
        #: unchanged)
        self.metrics_load_skips = None
        metrics = cluster.metrics
        self._m_ingested = metrics.counter(
            "cluster_photos_ingested_total", "photos accepted by ingest")
        self._m_replicas_placed = metrics.counter(
            "durability_replicas_placed_total",
            "replica copies landed per store", label_names=("store",))
        self._m_underreplicated = metrics.counter(
            "durability_underreplicated_total",
            "ingests that could not reach the configured replica count")

    # -- fleet views ---------------------------------------------------------
    @property
    def stores(self) -> List[PipeStore]:
        return self.cluster.stores

    def store_by_id(self, store_id: str) -> PipeStore:
        return self.cluster._resolve_store(store_id)

    def is_available(self, store_id: str) -> bool:
        return self.store_by_id(store_id).is_available

    def queue_depth(self, store_id: str) -> float:
        """Observed ingest backlog of one store, in object-equivalents."""
        return self._load.get(store_id, 0.0)

    def loads(self) -> Dict[str, float]:
        return dict(self._load)

    # -- upload landing -----------------------------------------------------
    def land_upload(self, pixels: np.ndarray, preprocessed: np.ndarray,
                    label: int, confidence: float,
                    train_label: Optional[int],
                    photo_id: Optional[str] = None) -> str:
        """Make one classified upload durable: placement, database record,
        replica copies, and the recovery journal.  Shared by the
        synchronous ingest path and the batched serving layer, which
        reuses the preprocessed tensor it already produced; the sharded
        fleet passes a tenant-qualified ``photo_id``."""
        cluster = self.cluster
        if photo_id is None:
            photo_id = f"photo-{self.ingest_counter:08d}"
        self.ingest_counter += 1
        photo = StoredPhoto(
            photo_id=photo_id,
            pixels=pixels,
            preprocessed=preprocessed,
            train_label=train_label,
        )
        store = self.place_photo(photo)
        cluster.database.upsert(LabelRecord(
            photo_id=photo_id, label=label,
            model_version=cluster.tuner.version,
            location=store.store_id, confidence=confidence,
        ))
        holders = [store.store_id]
        holders += self.place_replicas(photo, exclude=holders)
        cluster.replicas.place(photo_id, holders)
        if len(holders) < cluster.replication:
            self._m_underreplicated.inc()
        cluster.control.journal_put(photo_id, pixels, train_label)
        self._m_ingested.inc()
        return photo_id

    def place_photo(self, photo: StoredPhoto, kind: str = "ingest",
                    ) -> PipeStore:
        """Land one photo (raw blob + offloaded preprocessed binary) on an
        available store, riding the retry policy around dropped transfers
        and stores that crash between selection and write."""
        cluster = self.cluster
        last_error: Optional[BaseException] = None
        for store in self.placement.candidates(photo.photo_id):
            try:
                stored_bytes = store.store_photo(photo)
            except StoreUnavailableError as exc:
                last_error = exc
                continue
            delay_before = cluster.network.injected_latency_s
            try:
                call_with_retry(
                    lambda: cluster.network.send(
                        cluster.inference_server.name, store.store_id,
                        stored_bytes, kind),
                    cluster.retry)
            except TransientFaultError as exc:
                # placement never became durable-and-acknowledged; undo and
                # try the next store
                store.evict_photo(photo.photo_id)
                last_error = exc
                continue
            self._note_placement(
                store.store_id,
                cluster.network.injected_latency_s - delay_before)
            return store
        raise StoreUnavailableError(
            f"no PipeStore accepted {photo.photo_id}"
        ) from last_error

    def _note_placement(self, store_id: str, delay_s: float) -> None:
        self._load[store_id] = (self._load.get(store_id, 0.0) + 1.0
                                + self.latency_penalty * max(0.0, delay_s))

    def place_replicas(self, photo: StoredPhoto,
                       exclude: Sequence[str]) -> List[str]:
        """Land up to ``replication - 1`` extra copies on distinct stores.

        Placement is best-effort: a fleet with too few healthy stores
        leaves the photo under-replicated (counted in the metrics) rather
        than failing the ingest — the primary copy is already durable.
        """
        cluster = self.cluster
        placed: List[str] = []
        if cluster.replication <= 1:
            return placed
        taken = set(exclude)
        for store in self.placement.replica_candidates(
                photo.photo_id, taken):
            if len(placed) >= cluster.replication - 1:
                break
            if store.store_id in taken or not store.is_available:
                continue
            try:
                stored_bytes = store.store_photo(photo)
                call_with_retry(
                    lambda s=store, b=stored_bytes: cluster.network.send(
                        cluster.inference_server.name, s.store_id, b,
                        "replicate"),
                    cluster.retry)
            except (StoreUnavailableError, TransientFaultError):
                if store.objects.exists(store.objects.raw_key(photo.photo_id)):
                    store.evict_photo(photo.photo_id)
                continue
            placed.append(store.store_id)
            taken.add(store.store_id)
            self._m_replicas_placed.inc(store=store.store_id)
        return placed

    def next_available_store(self) -> PipeStore:
        """Round-robin placement that routes around failed servers."""
        for _ in range(len(self.stores)):
            store = self.stores[self.rr_next]
            self.rr_next = (self.rr_next + 1) % len(self.stores)
            if store.is_available:
                return store
        raise StoreUnavailableError("no PipeStore is available for ingest")
