"""Typed, validated construction configs for the runnable cluster.

:class:`NDPipeCluster` used to take eleven positional/keyword parameters
and validated only some of them — ``batch_size=0`` sailed through
``__init__`` and crashed deep inside the Tuner's batching loop.  All the
plain-value knobs now live in one frozen :class:`ClusterConfig`:

.. code-block:: python

    from repro import ClusterConfig, NDPipeCluster

    cluster = NDPipeCluster(factory, ClusterConfig(num_stores=8,
                                                   replication=2))

``ClusterConfig.validated()`` is the single validation choke point —
every constructor path (direct config, legacy kwargs, ``from_dict``)
funnels through it, so a bad knob fails loudly at construction with a
message naming the field.  ``to_dict``/``from_dict`` round-trip the
config for manifests and CLI plumbing.

Collaborator objects (the model factory, a shared
:class:`~repro.faults.retry.RetryPolicy`, metrics registry, tracer) are
deliberately *not* config: they are live objects, not values, and stay
keyword-only arguments on ``NDPipeCluster``.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Every plain-value knob of an :class:`~repro.core.cluster.NDPipeCluster`."""

    #: PipeStore fleet size
    num_stores: int = 4
    #: model partition point (None = APO-style default inside the Tuner)
    split: Optional[int] = None
    #: accounted raw-photo bytes per upload (the fabric's byte model)
    nominal_raw_bytes: int = 8192
    #: Tuner fine-tune learning rate
    lr: float = 3e-3
    #: Tuner fine-tune batch size
    batch_size: int = 64
    #: seed for the Tuner's training RNG stream
    seed: int = 0
    #: journal uploads so crashed stores' photos can be re-placed
    journal_uploads: bool = True
    #: journal residency cap (None = unbounded)
    journal_max_entries: Optional[int] = None
    #: copies of every photo, including the primary (1 = no replication)
    replication: int = 1

    def validated(self) -> "ClusterConfig":
        """Return self after checking every field; raises ``ValueError``."""
        if self.num_stores < 1:
            raise ValueError("need at least one PipeStore")
        if self.split is not None and self.split < 1:
            raise ValueError(f"split must be >= 1 or None, got {self.split}")
        if self.nominal_raw_bytes < 1:
            raise ValueError(
                f"nominal_raw_bytes must be >= 1, got {self.nominal_raw_bytes}")
        if not math.isfinite(self.lr) or self.lr <= 0:
            raise ValueError(f"lr must be a positive finite float, got {self.lr}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size} "
                "(the Tuner cannot form empty mini-batches)")
        if self.journal_max_entries is not None and self.journal_max_entries < 1:
            raise ValueError("journal_max_entries must be >= 1")
        if not 1 <= self.replication <= self.num_stores:
            raise ValueError(
                f"replication {self.replication} must be in "
                f"[1, {self.num_stores}]")
        return self

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "ClusterConfig":
        """Build and validate a config from a plain dict (strict keys)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ClusterConfig fields {unknown}; known fields: "
                f"{sorted(known)}")
        return cls(**data).validated()

    @classmethod
    def field_names(cls) -> frozenset:
        return frozenset(f.name for f in fields(cls))
