"""Byte-accounted message fabric connecting cluster nodes.

The runnable cluster does not move real packets; it moves Python objects
while recording exactly how many bytes each transfer would have put on the
wire, per (src, dst) edge and per traffic kind.  The network experiments
assert on these counters (e.g. FT-DMP feature traffic vs raw-image
traffic, Check-N-Run delta sizes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from ..sim.specs import NetworkSpec, TEN_GBE


@dataclass(frozen=True)
class TransferRecord:
    src: str
    dst: str
    kind: str
    num_bytes: int


class NetworkFabric:
    """Records every logical transfer between named nodes."""

    def __init__(self, spec: NetworkSpec = TEN_GBE):
        self.spec = spec
        self._by_edge: Counter = Counter()
        self._by_kind: Counter = Counter()
        self.total_bytes = 0
        self.transfer_count = 0

    def send(self, src: str, dst: str, num_bytes: int, kind: str,
             payload: Any = None) -> Any:
        """Account a transfer and hand the payload to the receiver."""
        if num_bytes < 0:
            raise ValueError("cannot send negative bytes")
        if src == dst:
            # local handoff: no network traffic — this is the whole point
            # of near-data processing
            return payload
        self._by_edge[(src, dst)] += num_bytes
        self._by_kind[kind] += num_bytes
        self.total_bytes += num_bytes
        self.transfer_count += 1
        return payload

    def bytes_between(self, src: str, dst: str) -> int:
        return self._by_edge[(src, dst)]

    def bytes_of_kind(self, kind: str) -> int:
        return self._by_kind[kind]

    def kinds(self) -> Dict[str, int]:
        return dict(self._by_kind)

    def transfer_seconds(self) -> float:
        """Wire time if every recorded byte crossed the shared link."""
        return self.spec.transfer_time(self.total_bytes)

    def reset(self) -> None:
        self._by_edge.clear()
        self._by_kind.clear()
        self.total_bytes = 0
        self.transfer_count = 0
