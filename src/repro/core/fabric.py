"""Byte-accounted message fabric connecting cluster nodes.

The runnable cluster does not move real packets; it moves Python objects
while recording exactly how many bytes each transfer would have put on the
wire, per (src, dst) edge and per traffic kind.  The network experiments
assert on these counters (e.g. FT-DMP feature traffic vs raw-image
traffic, Check-N-Run delta sizes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..faults.errors import MessageDroppedError
from ..lint.sanitizer import SANITIZER
from ..obs.metrics import MetricsRegistry
from ..sim.specs import NetworkSpec, TEN_GBE


@dataclass(frozen=True)
class TransferRecord:
    src: str
    dst: str
    kind: str
    num_bytes: int


class NetworkFabric:
    """Records every logical transfer between named nodes.

    ``fault_filter`` is the fault-injection seam: when set (by a
    :class:`repro.faults.FaultInjector`), every non-local transfer is
    offered to it first.  The filter may raise
    :class:`~repro.faults.MessageDroppedError` — the transfer then never
    happens and the caller is expected to retry or degrade — or return
    extra latency seconds that are charged to the wire-time accounting.
    """

    def __init__(self, spec: NetworkSpec = TEN_GBE,
                 fault_filter: Optional[Callable[["TransferRecord"], float]]
                 = None,
                 metrics: Optional[MetricsRegistry] = None):
        self.spec = spec
        self.fault_filter = fault_filter
        self._by_edge: Counter = Counter()
        self._by_kind: Counter = Counter()
        self.total_bytes = 0
        self.transfer_count = 0
        self.dropped_count = 0
        self.dropped_bytes = 0
        self.injected_latency_s = 0.0
        self._metrics: Optional[MetricsRegistry] = None
        if metrics is not None:
            self.bind_metrics(metrics)

    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Report every transfer into a shared registry from now on."""
        self._metrics = metrics
        self._m_bytes = metrics.counter(
            "fabric_bytes_total", "bytes moved per traffic kind and edge",
            label_names=("kind", "src", "dst"))
        self._m_transfers = metrics.counter(
            "fabric_transfers_total", "completed transfers per traffic kind",
            label_names=("kind",))
        self._m_dropped = metrics.counter(
            "fabric_dropped_total", "transfers dropped by fault injection",
            label_names=("kind",))
        self._m_dropped_bytes = metrics.counter(
            "fabric_dropped_bytes_total", "bytes lost to dropped transfers",
            label_names=("kind",))

    def send(self, src: str, dst: str, num_bytes: int, kind: str,
             payload: Any = None) -> Any:
        """Account a transfer and hand the payload to the receiver."""
        if num_bytes < 0:
            raise ValueError("cannot send negative bytes")
        if src == dst:
            # local handoff: no network traffic — this is the whole point
            # of near-data processing
            return payload
        if SANITIZER.enabled:
            # runtime cross-check of the static ND008 verdict: a wire
            # transfer issued while a tracked lock is held stalls every
            # thread contending for that lock
            SANITIZER.check_blocking(
                f"fabric send {src} -> {dst} ({kind}, {num_bytes}B)")
        if self.fault_filter is not None:
            record = TransferRecord(src=src, dst=dst, kind=kind,
                                    num_bytes=num_bytes)
            try:
                self.injected_latency_s += self.fault_filter(record)
            except MessageDroppedError:
                self.dropped_count += 1
                self.dropped_bytes += num_bytes
                if self._metrics is not None:
                    self._m_dropped.inc(kind=kind)
                    self._m_dropped_bytes.inc(num_bytes, kind=kind)
                raise
        self._by_edge[(src, dst)] += num_bytes
        self._by_kind[kind] += num_bytes
        self.total_bytes += num_bytes
        self.transfer_count += 1
        if self._metrics is not None:
            self._m_bytes.inc(num_bytes, kind=kind, src=src, dst=dst)
            self._m_transfers.inc(kind=kind)
        return payload

    def bytes_between(self, src: str, dst: str) -> int:
        return self._by_edge[(src, dst)]

    def bytes_of_kind(self, kind: str) -> int:
        return self._by_kind[kind]

    def kinds(self) -> Dict[str, int]:
        return dict(self._by_kind)

    def transfer_seconds(self) -> float:
        """Wire time if every recorded byte crossed the shared link,
        plus any latency injected by the fault filter."""
        return self.spec.transfer_time(self.total_bytes) + self.injected_latency_s

    def reset(self) -> None:
        self._by_edge.clear()
        self._by_kind.clear()
        self.total_bytes = 0
        self.transfer_count = 0
        self.dropped_count = 0
        self.dropped_bytes = 0
        self.injected_latency_s = 0.0
