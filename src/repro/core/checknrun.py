"""Check-N-Run model-delta distribution (§5, citing Eisenman et al.).

After fine-tuning, only the classifier's weights differ from what every
PipeStore already holds.  Instead of shipping whole models, the Tuner ships
a deflate-compressed delta containing just the changed tensors; each
PipeStore applies it locally.  The paper reports up to a 427.4x traffic
reduction; the encoder below achieves comparable ratios because the delta
holds only the tail layers and compresses well.

Encoding is exact (bit-identical reconstruction); an optional quantised
mode trades a bounded weight error for a few extra x of compression, like
Check-N-Run's quantisation.

Exactness is guaranteed by construction: the exact path encodes each
changed tensor as an XOR of bit patterns in the tensor's **native dtype**
(``new ^ old`` on the raw bytes), so ``old ^ diff`` reconstructs ``new``
bit-for-bit in any dtype — float32, float64, or integer.  An arithmetic
diff cannot make that promise (``fl(fl(new - old) + old) != new`` under
cancellation, and the old float64 round-trip broke float32 states), and
it also shipped float32 diffs at float64 width, doubling the wire size.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..fastpath import flags

# CNR2: entry headers carry the tensor dtype and exact payloads are
# native-dtype XOR bit diffs (CNR1 shipped float64 arithmetic diffs,
# which were neither bit-exact nor compact for float32 states)
_MAGIC = b"CNR2"


class DeltaError(ValueError):
    """Raised on malformed delta blobs or incompatible states."""


@dataclass(frozen=True)
class DeltaStats:
    """Traffic accounting for one distribution round."""

    full_model_bytes: int
    delta_bytes: int
    changed_tensors: int
    total_tensors: int

    @property
    def reduction_factor(self) -> float:
        if self.delta_bytes == 0:
            raise DeltaError("empty delta")
        return self.full_model_bytes / self.delta_bytes


def state_dict_bytes(state: Dict[str, np.ndarray]) -> int:
    """Serialized size of a whole model (what naive distribution ships)."""
    return sum(v.nbytes + len(k) + 8 for k, v in state.items())


def encode_delta(old: Dict[str, np.ndarray], new: Dict[str, np.ndarray],
                 quantize_bits: Optional[int] = None,
                 level: int = 6) -> bytes:
    """Encode ``new`` relative to ``old`` as a compressed delta blob.

    Only tensors that actually changed are included.  The exact mode
    (default) ships the XOR of the two tensors' bit patterns in the
    native dtype — reconstruction is bit-identical for every dtype.
    With ``quantize_bits`` set (e.g. 8), arithmetic differences are
    uniformly quantised per-tensor before compression — reconstruction
    is then approximate with max error ``range / 2^bits``.
    """
    if set(old) != set(new):
        raise DeltaError(
            f"state dicts disagree on keys: {sorted(set(old) ^ set(new))}"
        )
    entries = []
    changed = 0
    for key in sorted(new):
        if old[key].shape != new[key].shape:
            raise DeltaError(f"shape changed for {key}")
        if old[key].dtype != new[key].dtype:
            raise DeltaError(f"dtype changed for {key}")
        if np.array_equal(old[key], new[key]):
            continue
        changed += 1
        if quantize_bits is not None:
            # quantisation is approximate anyway; diff in float64 so the
            # grid is computed on exact differences
            diff = (new[key].astype(np.float64)
                    - old[key].astype(np.float64))
            payload, meta = _quantize(diff, quantize_bits)
        else:
            payload, meta = _xor_payload(old[key], new[key]), (0, 0.0, 0.0)
        header = _entry_header(key, new[key].shape, new[key].dtype, meta,
                               len(payload))
        entries.append(header + payload)
    body = b"".join(entries)
    compressed = zlib.compress(body, level)
    # crc32 over the compressed body: a delta mangled in flight must fail
    # loudly (DeltaError -> the Tuner falls back to a full resync) instead
    # of silently corrupting a replica
    checksum = zlib.crc32(compressed) & 0xFFFFFFFF
    return (_MAGIC + struct.pack(">I", changed)
            + struct.pack(">I", checksum) + compressed)


def apply_delta(old: Dict[str, np.ndarray], blob: bytes) -> Dict[str, np.ndarray]:
    """Reconstruct the new state dict from the old one plus a delta blob."""
    if not blob.startswith(_MAGIC):
        raise DeltaError("bad delta magic")
    if len(blob) < 12:
        raise DeltaError("truncated delta blob")
    (changed,) = struct.unpack(">I", blob[4:8])
    (checksum,) = struct.unpack(">I", blob[8:12])
    compressed = blob[12:]
    if zlib.crc32(compressed) & 0xFFFFFFFF != checksum:
        raise DeltaError("delta checksum mismatch (corrupt blob)")
    body = zlib.decompress(compressed)
    # payloads are read through a memoryview so each tensor's bytes are
    # consumed in place instead of slice-copied out of the body first
    body_view = memoryview(body) if flags().zero_copy else body
    new = {k: v.copy() for k, v in old.items()}
    offset = 0
    for _ in range(changed):
        key, shape, dtype, meta, payload_len, offset = _read_entry_header(
            body, offset)
        payload = body_view[offset:offset + payload_len]
        offset += payload_len
        if key not in new:
            raise DeltaError(f"delta names unknown tensor {key!r}")
        if new[key].shape != tuple(shape):
            raise DeltaError(f"shape mismatch applying delta to {key}")
        if new[key].dtype != dtype:
            raise DeltaError(
                f"dtype mismatch applying delta to {key}: base is "
                f"{new[key].dtype}, delta encoded {dtype}"
            )
        bits, low, step = meta
        if bits:
            diff = _dequantize(payload, bits, low, step, shape)
            new[key] = (new[key].astype(np.float64) + diff).astype(dtype)
        else:
            new[key] = _apply_xor_payload(new[key], payload, dtype, shape)
    if offset != len(body):
        raise DeltaError("trailing bytes in delta body")
    return new


def delta_stats(old: Dict[str, np.ndarray], new: Dict[str, np.ndarray],
                quantize_bits: Optional[int] = None) -> DeltaStats:
    """Measure what one distribution round would cost on the wire."""
    blob = encode_delta(old, new, quantize_bits=quantize_bits)
    changed = sum(
        1 for key in new if not np.array_equal(old[key], new[key])
    )
    return DeltaStats(
        full_model_bytes=state_dict_bytes(new),
        delta_bytes=len(blob),
        changed_tensors=changed,
        total_tensors=len(new),
    )


# -- wire format helpers ----------------------------------------------------

def _xor_payload(old: np.ndarray, new: np.ndarray) -> bytes:
    """XOR of the two tensors' raw bit patterns (native dtype width)."""
    a = np.frombuffer(np.ascontiguousarray(old).tobytes(), dtype=np.uint8)
    b = np.frombuffer(np.ascontiguousarray(new).tobytes(), dtype=np.uint8)
    return np.bitwise_xor(a, b).tobytes()


def _apply_xor_payload(base: np.ndarray, payload: bytes,
                       dtype: np.dtype, shape) -> np.ndarray:
    raw = np.frombuffer(np.ascontiguousarray(base).tobytes(), dtype=np.uint8)
    if len(payload) != raw.size:
        raise DeltaError(
            f"payload is {len(payload)} B but tensor occupies {raw.size} B"
        )
    patched = np.bitwise_xor(
        raw, np.frombuffer(payload, dtype=np.uint8))
    return np.frombuffer(patched.tobytes(), dtype=dtype).reshape(shape)


def _entry_header(key: str, shape, dtype: np.dtype, meta,
                  payload_len: int) -> bytes:
    key_bytes = key.encode()
    dtype_bytes = np.dtype(dtype).str.encode()
    bits, low, step = meta
    return (
        struct.pack(">H", len(key_bytes)) + key_bytes
        + struct.pack(">B", len(shape))
        + b"".join(struct.pack(">I", dim) for dim in shape)
        + struct.pack(">B", len(dtype_bytes)) + dtype_bytes
        + struct.pack(">Bdd", bits, low, step)
        + struct.pack(">I", payload_len)
    )


def _read_entry_header(body: bytes, offset: int):
    (key_len,) = struct.unpack_from(">H", body, offset)
    offset += 2
    key = body[offset:offset + key_len].decode()
    offset += key_len
    (ndim,) = struct.unpack_from(">B", body, offset)
    offset += 1
    shape = []
    for _ in range(ndim):
        (dim,) = struct.unpack_from(">I", body, offset)
        shape.append(dim)
        offset += 4
    (dtype_len,) = struct.unpack_from(">B", body, offset)
    offset += 1
    try:
        dtype = np.dtype(body[offset:offset + dtype_len].decode())
    except TypeError as exc:
        raise DeltaError(f"unknown dtype in delta entry for {key!r}") from exc
    offset += dtype_len
    bits, low, step = struct.unpack_from(">Bdd", body, offset)
    offset += struct.calcsize(">Bdd")
    (payload_len,) = struct.unpack_from(">I", body, offset)
    offset += 4
    return key, tuple(shape), dtype, (bits, low, step), payload_len, offset


def _quantize(diff: np.ndarray, bits: int):
    if not 1 <= bits <= 16:
        raise DeltaError("quantize_bits must be in [1, 16]")
    low = float(diff.min())
    high = float(diff.max())
    levels = (1 << bits) - 1
    step = (high - low) / levels if high > low else 1.0
    codes = np.round((diff - low) / step).astype(np.uint16)
    dtype = np.uint8 if bits <= 8 else np.uint16
    return codes.astype(dtype).tobytes(), (bits, low, step)


def _dequantize(payload: bytes, bits: int, low: float, step: float, shape):
    dtype = np.uint8 if bits <= 8 else np.uint16
    codes = np.frombuffer(payload, dtype=dtype).astype(np.float64)
    return (codes * step + low).reshape(shape)
