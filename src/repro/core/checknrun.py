"""Check-N-Run model-delta distribution (§5, citing Eisenman et al.).

After fine-tuning, only the classifier's weights differ from what every
PipeStore already holds.  Instead of shipping whole models, the Tuner ships
a deflate-compressed delta containing just the changed tensors; each
PipeStore applies it locally.  The paper reports up to a 427.4x traffic
reduction; the encoder below achieves comparable ratios because the delta
holds only the tail layers and compresses well.

Encoding is exact (bit-identical reconstruction); an optional quantised
mode trades a bounded weight error for a few extra x of compression, like
Check-N-Run's quantisation.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

_MAGIC = b"CNR1"


class DeltaError(ValueError):
    """Raised on malformed delta blobs or incompatible states."""


@dataclass(frozen=True)
class DeltaStats:
    """Traffic accounting for one distribution round."""

    full_model_bytes: int
    delta_bytes: int
    changed_tensors: int
    total_tensors: int

    @property
    def reduction_factor(self) -> float:
        if self.delta_bytes == 0:
            raise DeltaError("empty delta")
        return self.full_model_bytes / self.delta_bytes


def state_dict_bytes(state: Dict[str, np.ndarray]) -> int:
    """Serialized size of a whole model (what naive distribution ships)."""
    return sum(v.nbytes + len(k) + 8 for k, v in state.items())


def encode_delta(old: Dict[str, np.ndarray], new: Dict[str, np.ndarray],
                 quantize_bits: Optional[int] = None,
                 level: int = 6) -> bytes:
    """Encode ``new - old`` as a compressed delta blob.

    Only tensors that actually changed are included.  With
    ``quantize_bits`` set (e.g. 8), differences are uniformly quantised
    per-tensor before compression — reconstruction is then approximate
    with max error ``range / 2^bits``.
    """
    if set(old) != set(new):
        raise DeltaError(
            f"state dicts disagree on keys: {sorted(set(old) ^ set(new))}"
        )
    entries = []
    changed = 0
    for key in sorted(new):
        if old[key].shape != new[key].shape:
            raise DeltaError(f"shape changed for {key}")
        if np.array_equal(old[key], new[key]):
            continue
        changed += 1
        diff = (new[key] - old[key]).astype(np.float64)
        if quantize_bits is not None:
            payload, meta = _quantize(diff, quantize_bits)
        else:
            payload, meta = diff.tobytes(), (0, 0.0, 0.0)
        header = _entry_header(key, diff.shape, meta, len(payload))
        entries.append(header + payload)
    body = b"".join(entries)
    compressed = zlib.compress(body, level)
    # crc32 over the compressed body: a delta mangled in flight must fail
    # loudly (DeltaError -> the Tuner falls back to a full resync) instead
    # of silently corrupting a replica
    checksum = zlib.crc32(compressed) & 0xFFFFFFFF
    return (_MAGIC + struct.pack(">I", changed)
            + struct.pack(">I", checksum) + compressed)


def apply_delta(old: Dict[str, np.ndarray], blob: bytes) -> Dict[str, np.ndarray]:
    """Reconstruct the new state dict from the old one plus a delta blob."""
    if not blob.startswith(_MAGIC):
        raise DeltaError("bad delta magic")
    if len(blob) < 12:
        raise DeltaError("truncated delta blob")
    (changed,) = struct.unpack(">I", blob[4:8])
    (checksum,) = struct.unpack(">I", blob[8:12])
    compressed = blob[12:]
    if zlib.crc32(compressed) & 0xFFFFFFFF != checksum:
        raise DeltaError("delta checksum mismatch (corrupt blob)")
    body = zlib.decompress(compressed)
    new = {k: v.copy() for k, v in old.items()}
    offset = 0
    for _ in range(changed):
        key, shape, meta, payload_len, offset = _read_entry_header(body, offset)
        payload = body[offset:offset + payload_len]
        offset += payload_len
        if key not in new:
            raise DeltaError(f"delta names unknown tensor {key!r}")
        bits, low, step = meta
        if bits:
            diff = _dequantize(payload, bits, low, step, shape)
        else:
            diff = np.frombuffer(payload, dtype=np.float64).reshape(shape)
        if new[key].shape != tuple(shape):
            raise DeltaError(f"shape mismatch applying delta to {key}")
        new[key] = (new[key] + diff).astype(old[key].dtype)
    if offset != len(body):
        raise DeltaError("trailing bytes in delta body")
    return new


def delta_stats(old: Dict[str, np.ndarray], new: Dict[str, np.ndarray],
                quantize_bits: Optional[int] = None) -> DeltaStats:
    """Measure what one distribution round would cost on the wire."""
    blob = encode_delta(old, new, quantize_bits=quantize_bits)
    changed = sum(
        1 for key in new if not np.array_equal(old[key], new[key])
    )
    return DeltaStats(
        full_model_bytes=state_dict_bytes(new),
        delta_bytes=len(blob),
        changed_tensors=changed,
        total_tensors=len(new),
    )


# -- wire format helpers ----------------------------------------------------

def _entry_header(key: str, shape, meta, payload_len: int) -> bytes:
    key_bytes = key.encode()
    bits, low, step = meta
    return (
        struct.pack(">H", len(key_bytes)) + key_bytes
        + struct.pack(">B", len(shape))
        + b"".join(struct.pack(">I", dim) for dim in shape)
        + struct.pack(">Bdd", bits, low, step)
        + struct.pack(">I", payload_len)
    )


def _read_entry_header(body: bytes, offset: int):
    (key_len,) = struct.unpack_from(">H", body, offset)
    offset += 2
    key = body[offset:offset + key_len].decode()
    offset += key_len
    (ndim,) = struct.unpack_from(">B", body, offset)
    offset += 1
    shape = []
    for _ in range(ndim):
        (dim,) = struct.unpack_from(">I", body, offset)
        shape.append(dim)
        offset += 4
    bits, low, step = struct.unpack_from(">Bdd", body, offset)
    offset += struct.calcsize(">Bdd")
    (payload_len,) = struct.unpack_from(">I", body, offset)
    offset += 4
    return key, tuple(shape), (bits, low, step), payload_len, offset


def _quantize(diff: np.ndarray, bits: int):
    if not 1 <= bits <= 16:
        raise DeltaError("quantize_bits must be in [1, 16]")
    low = float(diff.min())
    high = float(diff.max())
    levels = (1 << bits) - 1
    step = (high - low) / levels if high > low else 1.0
    codes = np.round((diff - low) / step).astype(np.uint16)
    dtype = np.uint8 if bits <= 8 else np.uint16
    return codes.astype(dtype).tobytes(), (bits, low, step)


def _dequantize(payload: bytes, bits: int, low: float, step: float, shape):
    dtype = np.uint8 if bits <= 8 else np.uint16
    codes = np.frombuffer(payload, dtype=dtype).astype(np.float64)
    return (codes * step + low).reshape(shape)
