"""Crash-consistent checkpoint framing for the whole NDPipe lifecycle.

One checkpoint is a single self-describing blob:

``NDCP | version(1B) | deflate(manifest + blob table) | CRC32 trailer``

The JSON manifest holds every scalar (tuner version, RNG state, ingest
counters, the FT-DMP run journal) and points into a table of binary
blobs for the heavy payloads — model ``state_dict`` tensors, optimizer
moments, per-store :class:`ObjectStore` snapshots, the photo database.
The CRC32 trailer covers the entire frame, so a truncated-after-inflate
or bit-flipped checkpoint fails with :class:`CheckpointError` instead of
resuming from silently-wrong state (the same promise Check-N-Run makes
for model deltas in flight).

The assembly of a cluster's manifest lives in
:meth:`repro.core.cluster.NDPipeCluster.checkpoint` /
:meth:`~repro.core.cluster.NDPipeCluster.restore`; this module owns the
format so storage and core never disagree about bytes.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..storage.compression import deflate, inflate

CHECKPOINT_MAGIC = b"NDCP"
_VERSION = 1


class CheckpointError(ValueError):
    """Raised on malformed, truncated, or bit-flipped checkpoint blobs."""


# ---------------------------------------------------------------------------
# FT-DMP progress journal
# ---------------------------------------------------------------------------
@dataclass
class FinetuneProgress:
    """The run journal a mid-lifecycle checkpoint carries.

    ``next_run`` is the first run that has *not* completed; ``run_plan``
    pins the per-run, per-store photo assignment so a resumed lifecycle
    replays the identical schedule.  ``report`` carries the cumulative
    :class:`~repro.core.ftdmp.FinetuneReport` fields so far, so the
    resumed report matches an uninterrupted one.
    """

    num_runs: int
    epochs: int
    next_run: int
    run_plan: List[Dict[str, List[str]]]
    report: Dict[str, Any] = field(default_factory=dict)
    relocate_lost: bool = False

    @property
    def finished_gathering(self) -> bool:
        """Every run trained; only the distribution round remains."""
        return self.next_run >= self.num_runs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_runs": self.num_runs, "epochs": self.epochs,
            "next_run": self.next_run, "run_plan": self.run_plan,
            "report": self.report, "relocate_lost": self.relocate_lost,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FinetuneProgress":
        return cls(
            num_runs=data["num_runs"], epochs=data["epochs"],
            next_run=data["next_run"], run_plan=data["run_plan"],
            report=data.get("report", {}),
            relocate_lost=data.get("relocate_lost", False),
        )


# ---------------------------------------------------------------------------
# Array packing (state dicts, optimizer moments)
# ---------------------------------------------------------------------------
def pack_arrays(arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialise named arrays bit-exactly (key, dtype, shape, raw bytes)."""
    buffer = io.BytesIO()
    buffer.write(struct.pack(">I", len(arrays)))
    for key in sorted(arrays):
        # asarray(order="C"), not ascontiguousarray: the latter silently
        # promotes 0-d arrays to shape (1,), breaking bit-exactness
        arr = np.asarray(arrays[key], order="C")
        key_bytes = key.encode()
        dtype_bytes = arr.dtype.str.encode()
        buffer.write(struct.pack(">H", len(key_bytes)))
        buffer.write(key_bytes)
        buffer.write(struct.pack(">B", len(dtype_bytes)))
        buffer.write(dtype_bytes)
        buffer.write(struct.pack(">B", arr.ndim))
        for dim in arr.shape:
            buffer.write(struct.pack(">Q", dim))
        raw = arr.tobytes()
        buffer.write(struct.pack(">Q", len(raw)))
        buffer.write(raw)
    return buffer.getvalue()


def unpack_arrays(blob: bytes) -> Dict[str, np.ndarray]:
    """Inverse of :func:`pack_arrays`."""
    try:
        offset = 0
        (count,) = struct.unpack_from(">I", blob, offset)
        offset += 4
        arrays: Dict[str, np.ndarray] = {}
        for _ in range(count):
            (key_len,) = struct.unpack_from(">H", blob, offset)
            offset += 2
            key = blob[offset:offset + key_len].decode()
            offset += key_len
            (dtype_len,) = struct.unpack_from(">B", blob, offset)
            offset += 1
            dtype = np.dtype(blob[offset:offset + dtype_len].decode())
            offset += dtype_len
            (ndim,) = struct.unpack_from(">B", blob, offset)
            offset += 1
            shape = []
            for _ in range(ndim):
                (dim,) = struct.unpack_from(">Q", blob, offset)
                offset += 8
                shape.append(dim)
            (raw_len,) = struct.unpack_from(">Q", blob, offset)
            offset += 8
            raw = blob[offset:offset + raw_len]
            if len(raw) != raw_len:
                raise CheckpointError("array table truncated")
            offset += raw_len
            arrays[key] = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    except (struct.error, UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(f"corrupt array table: {exc}") from exc
    if offset != len(blob):
        raise CheckpointError("trailing bytes in array table")
    return arrays


# ---------------------------------------------------------------------------
# The outer frame
# ---------------------------------------------------------------------------
def write_frame(manifest: Dict[str, Any], blobs: List[bytes]) -> bytes:
    """Seal a manifest + blob table into one CRC-trailed checkpoint blob."""
    manifest_bytes = json.dumps(manifest).encode()
    body = io.BytesIO()
    body.write(struct.pack(">I", len(manifest_bytes)))
    body.write(manifest_bytes)
    body.write(struct.pack(">I", len(blobs)))
    for blob in blobs:
        body.write(struct.pack(">Q", len(blob)))
        body.write(blob)
    frame = (CHECKPOINT_MAGIC + struct.pack(">B", _VERSION)
             + deflate(body.getvalue()))
    return frame + struct.pack(">I", zlib.crc32(frame))


def read_frame(blob: bytes) -> Tuple[Dict[str, Any], List[bytes]]:
    """Verify and unpack a checkpoint frame; loud on any damage."""
    if len(blob) < len(CHECKPOINT_MAGIC) + 1 + 4:
        raise CheckpointError("checkpoint too short")
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError("not an NDPipe checkpoint (bad magic)")
    frame, (expected,) = blob[:-4], struct.unpack(">I", blob[-4:])
    if zlib.crc32(frame) != expected:
        raise CheckpointError(
            "checkpoint failed its CRC32 trailer check — refusing to "
            "resume from corrupt state"
        )
    (version,) = struct.unpack_from(">B", frame, len(CHECKPOINT_MAGIC))
    if version != _VERSION:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    try:
        body = inflate(frame[len(CHECKPOINT_MAGIC) + 1:])
    except ValueError as exc:
        raise CheckpointError(f"corrupt checkpoint body: {exc}") from exc
    try:
        offset = 0
        (manifest_len,) = struct.unpack_from(">I", body, offset)
        offset += 4
        manifest = json.loads(body[offset:offset + manifest_len].decode())
        offset += manifest_len
        (num_blobs,) = struct.unpack_from(">I", body, offset)
        offset += 4
        blobs: List[bytes] = []
        for _ in range(num_blobs):
            (blob_len,) = struct.unpack_from(">Q", body, offset)
            offset += 8
            chunk = body[offset:offset + blob_len]
            if len(chunk) != blob_len:
                raise CheckpointError("checkpoint blob table truncated")
            offset += blob_len
            blobs.append(chunk)
    except (struct.error, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint manifest: {exc}") from exc
    if offset != len(body):
        raise CheckpointError("trailing bytes in checkpoint body")
    return manifest, blobs


# ---------------------------------------------------------------------------
# Tuner-scoped frames (HA standby shipping)
# ---------------------------------------------------------------------------
#: manifest tag distinguishing a tuner-scoped HA frame from a full
#: cluster checkpoint — both share the NDCP framing and CRC trailer
TUNER_FRAME_KIND = "tuner-ha"


def pack_tuner_state(tuner_state: Dict[str, Any], epoch: int,
                     ftdmp: Optional[FinetuneProgress] = None) -> bytes:
    """Seal one Tuner's training state into a shippable NDCP frame.

    Unlike :meth:`~repro.core.cluster.NDPipeCluster.checkpoint` this
    carries *only* the Tuner — model, optimizer moments, RNG, version
    counters, election epoch, and the pending FT-DMP run journal — so a
    warm standby can be kept current at run boundaries without shipping
    (or later restoring) store snapshots the standby must not roll back.
    """
    blobs: List[bytes] = []

    def add(blob: bytes) -> int:
        blobs.append(blob)
        return len(blobs) - 1

    manifest: Dict[str, Any] = {
        "kind": TUNER_FRAME_KIND,
        "epoch": int(epoch),
        "tuner": {
            "version": tuner_state["version"],
            "split": tuner_state["split"],
            "lr": tuner_state["lr"],
            "rng": tuner_state["rng"],
            "model_blob": add(pack_arrays(tuner_state["model"])),
            "last_distributed_blob": (
                None if tuner_state["last_distributed"] is None
                else add(pack_arrays(tuner_state["last_distributed"]))),
            "optimizer": None,
        },
        "ftdmp": None if ftdmp is None else ftdmp.to_dict(),
    }
    if tuner_state["optimizer"] is not None:
        opt = tuner_state["optimizer"]
        manifest["tuner"]["optimizer"] = {
            "t": opt["t"],
            "m_blob": add(pack_arrays(opt["m"])),
            "v_blob": add(pack_arrays(opt["v"])),
        }
    return write_frame(manifest, blobs)


def unpack_tuner_state(blob: bytes,
                       ) -> Tuple[Dict[str, Any], int,
                                  Optional[FinetuneProgress]]:
    """Inverse of :func:`pack_tuner_state`.

    Returns ``(tuner_state, epoch, pending_progress)`` where
    ``tuner_state`` feeds ``Tuner.import_training_state`` directly.
    """
    manifest, blobs = read_frame(blob)
    try:
        if manifest.get("kind") != TUNER_FRAME_KIND:
            raise CheckpointError(
                f"expected a {TUNER_FRAME_KIND!r} frame, got "
                f"{manifest.get('kind')!r} (a full cluster checkpoint "
                "cannot be shipped to a standby)"
            )
        tuner_manifest = manifest["tuner"]
        last_blob = tuner_manifest["last_distributed_blob"]
        tuner_state: Dict[str, Any] = {
            "version": tuner_manifest["version"],
            "epoch": manifest["epoch"],
            "split": tuner_manifest["split"],
            "lr": tuner_manifest["lr"],
            "rng": tuner_manifest["rng"],
            "model": unpack_arrays(blobs[tuner_manifest["model_blob"]]),
            "last_distributed": (
                None if last_blob is None
                else unpack_arrays(blobs[last_blob])),
            "optimizer": None,
        }
        if tuner_manifest["optimizer"] is not None:
            opt = tuner_manifest["optimizer"]
            tuner_state["optimizer"] = {
                "t": opt["t"],
                "m": unpack_arrays(blobs[opt["m_blob"]]),
                "v": unpack_arrays(blobs[opt["v_blob"]]),
            }
        epoch = int(manifest["epoch"])
        progress = (None if manifest["ftdmp"] is None
                    else FinetuneProgress.from_dict(manifest["ftdmp"]))
    except (KeyError, IndexError, TypeError) as exc:
        raise CheckpointError(
            f"malformed tuner frame manifest: {exc!r}") from exc
    return tuner_state, epoch, progress


def inspect_checkpoint(blob: bytes) -> Dict[str, Any]:
    """A cheap summary of a checkpoint (no state is reconstructed)."""
    manifest, blobs = read_frame(blob)
    ftdmp = manifest.get("ftdmp")
    return {
        "tuner_version": manifest["tuner"]["version"],
        "num_stores": len(manifest["stores"]),
        "store_ids": [s["store_id"] for s in manifest["stores"]],
        "photos": manifest["cluster"]["ingest_counter"],
        "replication": manifest["cluster"]["replication"],
        "pending_finetune": (None if ftdmp is None else {
            "next_run": ftdmp["next_run"], "num_runs": ftdmp["num_runs"],
        }),
        "blob_bytes": sum(len(b) for b in blobs),
    }


def rng_state_to_json(rng: np.random.Generator) -> Dict[str, Any]:
    """A JSON-safe copy of a Generator's bit-generator state."""
    return _jsonify(rng.bit_generator.state)


def rng_state_from_json(state: Dict[str, Any]) -> Dict[str, Any]:
    return state


def _jsonify(value: Any) -> Any:
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value
