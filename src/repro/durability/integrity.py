"""Scrub reporting: what a CRC sweep over stored objects found.

The detection itself lives in :class:`~repro.storage.objectstore.ObjectStore`
(write-time CRC32, verified reads); this module holds the report types a
:meth:`PipeStore.scrub` pass and a cluster-wide
:meth:`NDPipeCluster.scrub_and_repair` produce.  Scrubs read through the
unaccounted ``peek`` path, so a sweep never perturbs workload IO stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class ScrubReport:
    """One CRC sweep over one PipeStore's object store."""

    store_id: str
    objects_checked: int = 0
    #: keys whose bytes no longer match their write-time CRC32
    corrupt_keys: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt_keys

    def corrupt_photo_ids(self) -> List[str]:
        """Photo ids behind the corrupt keys (raw/ or preproc/ namespace)."""
        ids = {key.split("/", 1)[1] for key in self.corrupt_keys
               if "/" in key}
        return sorted(ids)


@dataclass
class ClusterScrubReport:
    """One scrub-and-repair pass across the whole fleet."""

    #: per-store detection sweeps, in store order (down stores excluded)
    scrubs: List[ScrubReport] = field(default_factory=list)
    #: stores that were down and could not be scrubbed this pass
    stores_skipped: List[str] = field(default_factory=list)
    #: (store_id, key) objects rewritten from a healthy replica
    repaired: List[tuple] = field(default_factory=list)
    #: (store_id, key) objects restored after being lost outright
    restored: List[tuple] = field(default_factory=list)
    #: (store_id, key) objects with no healthy replica anywhere
    unrecoverable: List[tuple] = field(default_factory=list)

    @property
    def objects_checked(self) -> int:
        return sum(s.objects_checked for s in self.scrubs)

    @property
    def corrupt_found(self) -> int:
        return sum(len(s.corrupt_keys) for s in self.scrubs)

    @property
    def clean(self) -> bool:
        return (self.corrupt_found == 0 and not self.restored
                and not self.unrecoverable)

    def by_store(self) -> Dict[str, ScrubReport]:
        return {s.store_id: s for s in self.scrubs}
