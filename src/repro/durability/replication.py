"""Replica placement bookkeeping for k-way photo replication.

The label database stays the single source of truth for a photo's
*primary* location (where FT-DMP extraction and offline relabel run, so
no photo is ever trained or relabelled twice); the :class:`ReplicaMap`
records the full ordered holder list — primary first — that
scrub-and-repair consults when it needs a healthy donor copy.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class ReplicaMap:
    """photo_id -> ordered list of holder store ids (primary first)."""

    def __init__(self):
        self._holders: Dict[str, List[str]] = {}

    def place(self, photo_id: str, holders: List[str]) -> None:
        if not holders:
            raise ValueError(f"photo {photo_id!r} needs at least one holder")
        if len(set(holders)) != len(holders):
            raise ValueError(f"duplicate holders for {photo_id!r}: {holders}")
        self._holders[photo_id] = list(holders)

    def add_holder(self, photo_id: str, store_id: str) -> None:
        holders = self._holders.setdefault(photo_id, [])
        if store_id not in holders:
            holders.append(store_id)

    def drop(self, photo_id: str) -> None:
        self._holders.pop(photo_id, None)

    def remove_holder(self, photo_id: str, store_id: str) -> None:
        holders = self._holders.get(photo_id)
        if holders and store_id in holders:
            holders.remove(store_id)
            if not holders:
                del self._holders[photo_id]

    def holders(self, photo_id: str) -> List[str]:
        return list(self._holders.get(photo_id, ()))

    def primary(self, photo_id: str) -> Optional[str]:
        holders = self._holders.get(photo_id)
        return holders[0] if holders else None

    def is_holder(self, photo_id: str, store_id: str) -> bool:
        return store_id in self._holders.get(photo_id, ())

    def photos_on(self, store_id: str) -> List[str]:
        """Every photo (primary or replica) expected on one store."""
        return sorted(pid for pid, holders in self._holders.items()
                      if store_id in holders)

    def underreplicated(self, k: int) -> List[str]:
        """Photos with fewer than ``k`` holders (best-effort placement)."""
        return sorted(pid for pid, holders in self._holders.items()
                      if len(holders) < k)

    def __len__(self) -> int:
        return len(self._holders)

    def __contains__(self, photo_id: str) -> bool:
        return photo_id in self._holders

    # -- (de)serialisation for checkpoints ---------------------------------
    def to_dict(self) -> Dict[str, List[str]]:
        return {pid: list(holders) for pid, holders in self._holders.items()}

    @classmethod
    def from_dict(cls, data: Dict[str, List[str]]) -> "ReplicaMap":
        rmap = cls()
        for pid, holders in data.items():
            rmap.place(pid, list(holders))
        return rmap
