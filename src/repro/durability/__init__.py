"""``repro.durability`` — the layer that keeps photos alive.

The paper's premise is that photos *live* on the PipeStores (§4, §5.4);
a production photo store must therefore survive process crashes and
silent media corruption, not just the transient faults
:mod:`repro.faults` injects.  Three mechanisms, composed by
:class:`repro.core.cluster.NDPipeCluster`:

* **integrity** — every :class:`~repro.storage.objectstore.ObjectStore`
  blob carries a write-time CRC32, verified on workload reads; a
  ``scrub()`` pass walks a store and reports what rotted
  (:class:`ScrubReport`);
* **replication** — k-way placement of photos across PipeStores
  (:class:`ReplicaMap`), so scrub-detected or crash-lost objects are
  re-fetched from a healthy replica over the fabric;
* **checkpoint/resume** — versioned, CRC-sealed serialisation of the
  whole lifecycle state (:mod:`repro.durability.checkpoint`), so a
  Tuner crash mid-run resumes from the last completed run instead of
  restarting the lifecycle.
"""

from .integrity import ClusterScrubReport, ScrubReport
from .replication import ReplicaMap
from .checkpoint import (
    CHECKPOINT_MAGIC,
    CheckpointError,
    FinetuneProgress,
    inspect_checkpoint,
    pack_arrays,
    unpack_arrays,
)

__all__ = [
    "ScrubReport", "ClusterScrubReport", "ReplicaMap",
    "CheckpointError", "CHECKPOINT_MAGIC", "FinetuneProgress",
    "inspect_checkpoint", "pack_arrays", "unpack_arrays",
]
