"""Hot-path implementation switches: vectorized vs scalar reference.

The perf-trajectory work (ISSUE 6) vectorized four hot paths — ingest
classification batching, NPE preprocess, preprocessed-binary decode, and
the numpy autograd contractions — and replaced bytes-concatenation with
zero-copy ``memoryview`` slicing through the storage codecs.  Every
optimized path keeps its original scalar implementation behind a flag so

* the equivalence tests can prove, same seeds in, that the vectorized
  code produces **bit-identical floats and identical metric counters**
  (``tests/test_equivalence.py``, ``tests/nn/test_functional_equivalence``);
* the perf harness (``repro perf``) can measure the speedup of the
  vectorized paths against the historical scalar paths on the same
  machine, in the same process.

Flags and what they gate
------------------------

``vectorized_preprocess``
    Ingest preprocesses whole upload batches in one elementwise numpy
    call instead of per-photo.  Elementwise, therefore bit-neutral.
``vectorized_autograd``
    ``nn/functional``'s conv contractions run as batched ``np.matmul``
    (one BLAS call) instead of the per-call ``np.einsum`` dispatch, and
    ``BatchNorm2d`` takes a raw-numpy eval path that performs the exact
    same elementwise operations without building autograd nodes.  The
    contraction order over the reduced axis is unchanged, so outputs are
    bit-identical; the equivalence suite enforces this.
``batch_decode``
    PipeStore decodes a batch of preprocessed binaries directly into one
    preallocated ``(N, C, H, W)`` array instead of per-photo
    decode + copy + ``np.stack``.  Byte-level identical.
``zero_copy``
    Codec/delta readers slice through ``memoryview`` /
    ``np.frombuffer(offset=...)`` instead of copying ``bytes`` slices.
    Byte-level identical.
``batched_ingest``
    ``NDPipeCluster.ingest`` classifies uploads in micro-batches of the
    cluster's ``batch_size`` instead of one batch-1 forward per photo.
    This is a *scheduling* change: the per-photo labels/argmax agree,
    but confidences may differ in the last float ulps because BLAS
    reduces a batch-N GEMM differently from N batch-1 calls.  It is
    therefore a separate flag from the bit-neutral vectorizations, and
    the golden checkpoint-CRC test holds it fixed while toggling the
    others.

``scalar_mode()`` turns everything off (the historical implementation);
``NDPIPE_SCALAR_PATH=1`` does the same for a whole process.  All
switches default to on.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace

__all__ = ["FastPathFlags", "flags", "overrides", "scalar_mode", "set_flags"]


@dataclass(frozen=True)
class FastPathFlags:
    """Which optimized implementations are active (all on by default)."""

    batched_ingest: bool = True
    vectorized_preprocess: bool = True
    vectorized_autograd: bool = True
    batch_decode: bool = True
    zero_copy: bool = True

    @classmethod
    def all_off(cls) -> "FastPathFlags":
        return cls(**{f.name: False for f in fields(cls)})

    @classmethod
    def from_env(cls) -> "FastPathFlags":
        if os.environ.get("NDPIPE_SCALAR_PATH"):
            return cls.all_off()
        return cls()


_lock = threading.Lock()
_flags = FastPathFlags.from_env()


def flags() -> FastPathFlags:
    """The currently active switch set."""
    return _flags


def set_flags(new_flags: FastPathFlags) -> FastPathFlags:
    """Install ``new_flags`` globally; returns the previous set."""
    global _flags
    with _lock:
        previous = _flags
        _flags = new_flags
    return previous


@contextmanager
def overrides(**changes: bool):
    """Temporarily override individual switches.

    >>> with overrides(vectorized_autograd=False):
    ...     ...  # scalar einsum conv path
    """
    previous = set_flags(replace(_flags, **changes))
    try:
        yield _flags
    finally:
        set_flags(previous)


@contextmanager
def scalar_mode():
    """Run the historical scalar implementation of every hot path."""
    previous = set_flags(FastPathFlags.all_off())
    try:
        yield _flags
    finally:
        set_flags(previous)
